"""Instantiation: declarative model -> component-instance tree.

Mirrors OSATE's instantiation step (paper S1: "an XML-based internal
representation ... and a library of model exploration routines"):

1. build the instance tree from a root system implementation, expanding
   subcomponents recursively (filtered to those active in the initial
   mode of each implementation);
2. resolve *semantic connections* (paper S2): starting from an ultimate
   source feature on a thread/device, follow syntactic connections up the
   containment hierarchy, across one sibling connection, and down to the
   ultimate destination thread/device;
3. resolve bindings: ``Actual_Processor_Binding`` for threads and
   ``Actual_Connection_Binding`` (buses) for connections, both via
   reference property values interpreted relative to the holder of the
   property association.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    AadlInstantiationError,
    AadlNameError,
    AadlPropertyError,
)
from repro.aadl.components import (
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    DeclarativeModel,
    Subcomponent,
)
from repro.aadl.connections import Connection, ConnectionKind
from repro.aadl.features import Port, PortDirection, PortKind
from repro.aadl.properties import (
    ACTUAL_CONNECTION_BINDING,
    ACTUAL_PROCESSOR_BINDING,
    PropertyValue,
    ReferenceValue,
    TimeRange,
    TimeValue,
)


class FeatureInstance:
    """An instantiated feature of a component instance."""

    __slots__ = ("component", "feature")

    def __init__(self, component: "ComponentInstance", feature) -> None:
        self.component = component
        self.feature = feature

    @property
    def name(self) -> str:
        return self.feature.name

    @property
    def qualified_name(self) -> str:
        return f"{self.component.qualified_name}.{self.feature.name}"

    @property
    def is_port(self) -> bool:
        return isinstance(self.feature, Port)

    def __repr__(self) -> str:
        return f"FeatureInstance({self.qualified_name!r})"


class ComponentInstance:
    """A node of the instance tree."""

    def __init__(
        self,
        name: str,
        category: ComponentCategory,
        ctype: ComponentType,
        impl: Optional[ComponentImplementation],
        parent: Optional["ComponentInstance"],
        decl: Optional[Subcomponent],
    ) -> None:
        self.name = name
        self.category = category
        self.ctype = ctype
        self.impl = impl
        self.parent = parent
        self.decl = decl
        self.children: Dict[str, "ComponentInstance"] = {}
        self.features: Dict[str, FeatureInstance] = {}
        for feature in ctype.features.values():
            self.features[feature.name.lower()] = FeatureInstance(self, feature)
        # Filled in by binding resolution (threads only).
        self.bound_processor: Optional["ComponentInstance"] = None

    # -- tree navigation ----------------------------------------------------

    @property
    def path(self) -> Tuple[str, ...]:
        if self.parent is None:
            return (self.name,)
        return self.parent.path + (self.name,)

    @property
    def qualified_name(self) -> str:
        return ".".join(self.path)

    @property
    def root(self) -> "ComponentInstance":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def child(self, name: str) -> "ComponentInstance":
        try:
            return self.children[name.lower()]
        except KeyError:
            raise AadlNameError(
                f"{self.qualified_name} has no subcomponent {name!r}"
            ) from None

    def feature(self, name: str) -> FeatureInstance:
        try:
            return self.features[name.lower()]
        except KeyError:
            raise AadlNameError(
                f"{self.qualified_name} has no feature {name!r}"
            ) from None

    def descendants(self) -> Iterator["ComponentInstance"]:
        """All instances below this one, depth-first, self excluded."""
        for child in self.children.values():
            yield child
            yield from child.descendants()

    def self_and_descendants(self) -> Iterator["ComponentInstance"]:
        yield self
        yield from self.descendants()

    def by_category(
        self, category: ComponentCategory
    ) -> List["ComponentInstance"]:
        return [
            inst
            for inst in self.self_and_descendants()
            if inst.category is category
        ]

    @property
    def host_processor(self) -> Optional["ComponentInstance"]:
        """The physical processor this component ultimately executes on.

        Follows one level of indirection: a thread bound to a virtual
        processor executes on the virtual processor's own bound
        processor.  None while unbound.
        """
        target = self.bound_processor
        if (
            target is not None
            and target.category is ComponentCategory.VIRTUAL_PROCESSOR
        ):
            return target.bound_processor
        return target

    def threads(self) -> List["ComponentInstance"]:
        return self.by_category(ComponentCategory.THREAD)

    def processors(self) -> List["ComponentInstance"]:
        return self.by_category(ComponentCategory.PROCESSOR)

    def virtual_processors(self) -> List["ComponentInstance"]:
        return self.by_category(ComponentCategory.VIRTUAL_PROCESSOR)

    def buses(self) -> List["ComponentInstance"]:
        return self.by_category(ComponentCategory.BUS)

    def devices(self) -> List["ComponentInstance"]:
        return self.by_category(ComponentCategory.DEVICE)

    def resolve_path(self, path: Sequence[str]) -> "ComponentInstance":
        """Resolve a dotted instance path relative to this instance."""
        node = self
        for part in path:
            node = node.child(part)
        return node

    # -- property lookup -----------------------------------------------------

    def property_with_holder(
        self, name: str
    ) -> Optional[Tuple[PropertyValue, "ComponentInstance"]]:
        """Value and holder of a property, honouring AADL precedence:
        contained associations on enclosing components override the
        subcomponent declaration, which overrides the implementation,
        which overrides the type."""
        # Contained associations: nearest enclosing holder wins.
        node = self.parent
        rel_path = [self.name]
        while node is not None:
            for holder in _holders_of(node):
                value = _contained_lookup(holder, name, tuple(rel_path))
                if value is not None:
                    return value, node
            rel_path.insert(0, node.name)
            node = node.parent
        if self.decl is not None:
            value = self.decl.own_property(name)
            if value is not None:
                parent = self.parent if self.parent is not None else self
                return value, parent
        if self.impl is not None:
            value = self.impl.own_property(name)
            if value is not None:
                return value, self
        value = self.ctype.own_property(name)
        if value is not None:
            return value, self
        return None

    def property(
        self, name: str, default: Optional[PropertyValue] = None
    ) -> Optional[PropertyValue]:
        found = self.property_with_holder(name)
        return found[0] if found is not None else default

    def property_time(self, name: str) -> Optional[TimeValue]:
        value = self.property(name)
        if value is None:
            return None
        if isinstance(value, TimeValue):
            return value
        raise AadlPropertyError(
            f"{self.qualified_name}: property {name} is not a time value: "
            f"{value!r}"
        )

    def property_time_range(self, name: str) -> Optional[TimeRange]:
        value = self.property(name)
        if value is None:
            return None
        if isinstance(value, TimeRange):
            return value
        if isinstance(value, TimeValue):
            return TimeRange(value, value)
        raise AadlPropertyError(
            f"{self.qualified_name}: property {name} is not a time range: "
            f"{value!r}"
        )

    def property_int(self, name: str) -> Optional[int]:
        value = self.property(name)
        if value is None:
            return None
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        raise AadlPropertyError(
            f"{self.qualified_name}: property {name} is not an integer: "
            f"{value!r}"
        )

    def __repr__(self) -> str:
        return (
            f"ComponentInstance({self.qualified_name!r}, "
            f"{self.category.value})"
        )


def _holders_of(instance: ComponentInstance):
    if instance.impl is not None:
        yield instance.impl
    yield instance.ctype
    if instance.decl is not None:
        yield instance.decl


def _contained_lookup(holder, name: str, rel_path: Tuple[str, ...]):
    result = None
    for assoc in holder.contained_properties(name):
        if tuple(p.lower() for p in assoc.applies_to) == tuple(
            p.lower() for p in rel_path
        ):
            result = assoc.value
    return result


class ConnectionInstance:
    """A semantic connection: ultimate source to ultimate destination.

    ``syntactic`` records the chain of (owner instance, connection)
    pairs; ``buses`` the execution-platform components the connection is
    bound to.
    """

    def __init__(
        self,
        source: FeatureInstance,
        destination: FeatureInstance,
        syntactic: Sequence[Tuple[ComponentInstance, Connection]],
    ) -> None:
        if not syntactic:
            raise AadlInstantiationError(
                "semantic connection needs at least one syntactic connection"
            )
        self.source = source
        self.destination = destination
        self.syntactic = list(syntactic)
        self.buses: List[ComponentInstance] = []

    @property
    def name(self) -> str:
        return "+".join(conn.name for _, conn in self.syntactic)

    @property
    def qualified_name(self) -> str:
        return (
            f"{self.source.qualified_name}->{self.destination.qualified_name}"
        )

    @property
    def kind(self) -> PortKind:
        """Connection kind, determined by the destination port."""
        return self.destination.feature.kind

    @property
    def dispatches_destination(self) -> bool:
        """True when arrival can dispatch a non-periodic destination thread."""
        return self.kind.can_dispatch

    def connection_property(self, name: str) -> Optional[PropertyValue]:
        """Last declared value of a property across the syntactic chain."""
        result = None
        for _, conn in self.syntactic:
            value = conn.own_property(name)
            if value is not None:
                result = value
        return result

    def destination_port_property(
        self, name: str
    ) -> Optional[PropertyValue]:
        """Property of the *last port* of the connection (paper S4.4 reads
        ``Queue_Size`` and ``Overflow_Handling_Protocol`` there)."""
        return self.destination.feature.own_property(name)

    def __repr__(self) -> str:
        return f"ConnectionInstance({self.qualified_name!r})"


class AccessConnectionInstance:
    """A resolved access connection: a thread's access feature bound to a
    shared data (or bus) component."""

    __slots__ = ("feature", "target", "syntactic")

    def __init__(
        self,
        feature: FeatureInstance,
        target: ComponentInstance,
        syntactic: Sequence[Tuple[ComponentInstance, Connection]],
    ) -> None:
        self.feature = feature
        self.target = target
        self.syntactic = list(syntactic)

    @property
    def qualified_name(self) -> str:
        return (
            f"{self.feature.qualified_name}<->{self.target.qualified_name}"
        )

    def __repr__(self) -> str:
        return f"AccessConnectionInstance({self.qualified_name!r})"


class SystemInstance(ComponentInstance):
    """The root of an instance tree, with resolved semantic connections."""

    def __init__(
        self,
        name: str,
        ctype: ComponentType,
        impl: ComponentImplementation,
        declarative: DeclarativeModel,
    ) -> None:
        super().__init__(
            name, ComponentCategory.SYSTEM, ctype, impl, None, None
        )
        self.declarative = declarative
        self.connections: List[ConnectionInstance] = []
        #: qualified name of each multi-modal component -> its active mode
        self.active_modes: Dict[str, Optional[str]] = {}
        self.access_connections: List[AccessConnectionInstance] = []

    def connections_to(
        self, instance: ComponentInstance
    ) -> List[ConnectionInstance]:
        """Semantic connections whose ultimate destination lies on
        ``instance`` (paper: E^in_t)."""
        return [
            conn
            for conn in self.connections
            if conn.destination.component is instance
        ]

    def connections_from(
        self, instance: ComponentInstance
    ) -> List[ConnectionInstance]:
        """Semantic connections whose ultimate source lies on ``instance``
        (paper: E^out_t)."""
        return [
            conn
            for conn in self.connections
            if conn.source.component is instance
        ]

    def shared_data_of(
        self, instance: ComponentInstance
    ) -> List[ComponentInstance]:
        """Data components ``instance`` requires access to (resolved
        access connections)."""
        return [
            acc.target
            for acc in self.access_connections
            if acc.feature.component is instance
        ]

    def __repr__(self) -> str:
        return (
            f"SystemInstance({self.qualified_name!r}, "
            f"threads={len(self.threads())}, "
            f"connections={len(self.connections)})"
        )


class SystemSlice(SystemInstance):
    """A filtered view of an instantiated system: the same component
    objects, restricted to a kept subset.

    The slice *shares* the underlying instance tree -- kept components
    are the original :class:`ComponentInstance` objects, so qualified
    names, bindings and property lookups (which climb the original
    parent chain) are byte-identical to the full model.  Only the
    enumeration surface is filtered: :meth:`descendants` (and therefore
    ``threads()``/``processors()``/...), ``connections`` and
    ``access_connections`` answer from the kept subset.

    Built by :func:`slice_instance`; consumed by the compositional
    analysis (:mod:`repro.compose`), which analyzes one processor
    island at a time.
    """

    def __init__(
        self,
        base: SystemInstance,
        keep: Iterable[ComponentInstance],
        *,
        label: Optional[str] = None,
    ) -> None:
        # Deliberately NOT calling super().__init__: the slice borrows
        # the base tree instead of building a new one, so every kept
        # node keeps its identity (and its qualified name).
        self.base = base
        self.label = label or base.name
        self.kept = frozenset(keep)
        self.name = base.name
        self.category = base.category
        self.ctype = base.ctype
        self.impl = base.impl
        self.parent = None
        self.decl = None
        self.children = base.children
        self.features = base.features
        self.bound_processor = None
        self.declarative = base.declarative
        self.active_modes = base.active_modes
        self.connections = [
            conn
            for conn in base.connections
            if conn.source.component in self.kept
            and conn.destination.component in self.kept
        ]
        self.access_connections = [
            acc
            for acc in base.access_connections
            if acc.feature.component in self.kept and acc.target in self.kept
        ]

    def descendants(self) -> Iterator[ComponentInstance]:
        for inst in self.base.descendants():
            if inst in self.kept:
                yield inst

    def __repr__(self) -> str:
        return (
            f"SystemSlice({self.label!r}, threads={len(self.threads())}, "
            f"connections={len(self.connections)})"
        )


def slice_instance(
    base: SystemInstance,
    components: Iterable[ComponentInstance],
    *,
    label: Optional[str] = None,
) -> SystemSlice:
    """Slice ``base`` down to ``components`` plus everything they imply.

    The keep-set is closed over:

    * the ancestors of every kept component (so containment navigation
      still reaches them);
    * the binding chain of every kept component (a thread's virtual
      processor and that virtual processor's host processor);
    * devices that are the ultimate source of a connection into a kept
      component (environment stubs belong with their consumer);
    * buses a kept connection is bound to;
    * shared data components a kept thread requires access to.

    Connections survive only when both endpoints are kept, which is
    what makes the slice analyzable on its own.
    """
    kept = set()
    for component in components:
        node: Optional[ComponentInstance] = component
        while node is not None and node is not base:
            kept.add(node)
            node = node.parent
    # Processor bindings come along: a kept thread keeps the virtual
    # processor it is bound to and that virtual processor's host, so a
    # partitioned island stays analyzable (and re-instantiable) alone.
    for component in list(kept):
        target = component.bound_processor
        while target is not None and target not in kept:
            node = target
            while node is not None and node is not base:
                kept.add(node)
                node = node.parent
            target = target.bound_processor
    # Devices feeding kept components come along.
    for conn in base.connections:
        source = conn.source.component
        if (
            source.category is ComponentCategory.DEVICE
            and conn.destination.component in kept
        ):
            node = source
            while node is not None and node is not base:
                kept.add(node)
                node = node.parent
    # Buses of surviving connections and shared data of kept threads.
    for conn in base.connections:
        if (
            conn.source.component in kept
            and conn.destination.component in kept
        ):
            kept.update(conn.buses)
    for acc in base.access_connections:
        if acc.feature.component in kept:
            kept.add(acc.target)
    return SystemSlice(base, kept, label=label)


# ---------------------------------------------------------------------------
# Instantiation
# ---------------------------------------------------------------------------


def infer_root(model: DeclarativeModel) -> str:
    """The unique root system implementation of ``model``.

    The root of the hierarchy is a system implementation that no other
    implementation instantiates as a subcomponent.  Raises
    :class:`~repro.errors.AadlInstantiationError` (listing the
    candidates) unless exactly one exists -- callers that accept an
    explicit root (the CLI, batch jobs) surface that message as the
    "--root is required" hint.
    """
    candidates = [
        impl.name
        for impl in model.implementations()
        if model.type(impl.type_name).category is ComponentCategory.SYSTEM
    ]
    used = {
        sub.classifier.lower()
        for impl in model.implementations()
        for sub in impl.subcomponents.values()
    }
    roots = [name for name in candidates if name.lower() not in used]
    if len(roots) != 1:
        raise AadlInstantiationError(
            "cannot infer a unique root; candidate system "
            "implementations: " + (", ".join(roots or candidates) or "<none>")
        )
    return roots[0]


def instantiate(
    model: DeclarativeModel,
    root_impl: str,
    *,
    root_name: Optional[str] = None,
    mode_overrides: Optional[Dict[str, str]] = None,
) -> SystemInstance:
    """Instantiate ``root_impl`` (e.g. ``"CruiseControl.impl"``).

    The returned :class:`SystemInstance` has a full instance tree, resolved
    semantic connections, and resolved processor/bus bindings.

    ``mode_overrides`` maps implementation names to the mode to activate
    there instead of the initial one -- this is how per-mode analysis
    (``repro.analysis.modes``) instantiates each system operation mode of
    a multi-modal model.
    """
    impl = model.implementation(root_impl)
    ctype = model.type_of_impl(impl)
    if ctype.category is not ComponentCategory.SYSTEM:
        raise AadlInstantiationError(
            f"root implementation must be a system, got "
            f"{ctype.category.value}"
        )
    overrides = {
        name.lower(): mode for name, mode in (mode_overrides or {}).items()
    }
    for impl_name, mode in overrides.items():
        target = model.implementation(impl_name)
        if not target.modes:
            raise AadlInstantiationError(
                f"{target.name}: mode override {mode!r} but no modes declared"
            )
        if mode.lower() not in target.modes:
            raise AadlInstantiationError(
                f"{target.name}: unknown mode {mode!r}; declared: "
                + ", ".join(m.name for m in target.modes.values())
            )
    from repro.obs.tracer import current_tracer

    with current_tracer().span("aadl.instantiate", root=root_impl) as span:
        root = SystemInstance(
            root_name or impl.type_name, ctype, impl, model
        )
        root.active_modes = {}
        _expand(root, model, overrides)
        _resolve_semantic_connections(root, overrides)
        _resolve_access_connections(root, overrides)
        _resolve_bindings(root)
        span.set(
            threads=len(root.threads()),
            connections=len(root.connections),
        )
    return root


def _active_mode_name(
    impl: ComponentImplementation, overrides: Dict[str, str]
) -> Optional[str]:
    """The mode this instantiation activates in ``impl`` (None: modeless)."""
    if not impl.modes:
        override = overrides.get(impl.name.lower())
        if override is not None:
            raise AadlInstantiationError(
                f"{impl.name}: mode override {override!r} but no modes "
                f"declared"
            )
        return None
    override = overrides.get(impl.name.lower())
    if override is not None:
        if override.lower() not in impl.modes:
            raise AadlInstantiationError(
                f"{impl.name}: unknown mode {override!r}; declared: "
                + ", ".join(m.name for m in impl.modes.values())
            )
        return impl.modes[override.lower()].name
    initial = impl.initial_mode()
    return initial.name if initial is not None else None


def _active_in_mode(
    holder, impl: ComponentImplementation, overrides: Dict[str, str]
) -> bool:
    if not holder.in_modes:
        return True
    active = _active_mode_name(impl, overrides)
    if active is None:
        raise AadlInstantiationError(
            f"{impl.name}: 'in modes' used but no modes declared"
        )
    return any(m.lower() == active.lower() for m in holder.in_modes)


def _expand(
    instance: ComponentInstance,
    model: DeclarativeModel,
    overrides: Dict[str, str],
) -> None:
    impl = instance.impl
    if impl is None:
        return
    if impl.modes:
        instance.root.active_modes[instance.qualified_name] = (
            _active_mode_name(impl, overrides)
        )
    for sub in impl.subcomponents.values():
        if not _active_in_mode(sub, impl, overrides):
            continue
        try:
            ctype, sub_impl = model.resolve(sub.classifier)
        except AadlNameError as exc:
            raise AadlInstantiationError(
                f"{instance.qualified_name}.{sub.name}: {exc}"
            ) from exc
        if ctype.category is not sub.category:
            raise AadlInstantiationError(
                f"{instance.qualified_name}.{sub.name}: declared as "
                f"{sub.category.value} but classifier {sub.classifier!r} "
                f"is a {ctype.category.value}"
            )
        child = ComponentInstance(
            sub.name, sub.category, ctype, sub_impl, instance, sub
        )
        instance.children[sub.name.lower()] = child
        _expand(child, model, overrides)


def _endpoint(
    owner: ComponentInstance, ref
) -> FeatureInstance:
    if ref.is_self:
        return owner.feature(ref.feature)
    return owner.child(ref.subcomponent).feature(ref.feature)


def _resolve_semantic_connections(
    root: SystemInstance, overrides: Dict[str, str]
) -> None:
    """Follow syntactic port connections into semantic connections."""
    # Map: source FeatureInstance -> [(destination FeatureInstance,
    #                                  (owner, connection))]
    edges: Dict[FeatureInstance, List[Tuple[FeatureInstance, Tuple]]] = {}
    for inst in root.self_and_descendants():
        impl = inst.impl
        if impl is None:
            continue
        for conn in impl.connections:
            if conn.kind is not ConnectionKind.PORT:
                continue
            if not _active_in_mode(conn, impl, overrides):
                continue
            try:
                src = _endpoint(inst, conn.source)
                dst = _endpoint(inst, conn.destination)
            except AadlNameError as exc:
                raise AadlInstantiationError(
                    f"connection {conn.name} in {inst.qualified_name}: {exc}"
                ) from exc
            _check_port_endpoint(conn, src, dst, inst)
            edges.setdefault(src, []).append((dst, (inst, conn)))

    for inst in root.self_and_descendants():
        if not inst.category.can_be_ultimate_endpoint:
            continue
        for feature in inst.features.values():
            if not feature.is_port:
                continue
            if not feature.feature.direction.produces_outgoing:
                continue
            if feature not in edges:
                continue
            _follow(root, feature, [], edges, set())


def _follow(
    root: SystemInstance,
    feature: FeatureInstance,
    chain: List[Tuple[ComponentInstance, Connection]],
    edges: Dict,
    visiting: set,
) -> None:
    if feature in visiting:
        raise AadlInstantiationError(
            f"connection cycle through {feature.qualified_name}"
        )
    outgoing = edges.get(feature, [])
    if not outgoing:
        if not chain:
            return
        if feature.component.category.can_be_ultimate_endpoint:
            source = chain[0][1]
            ultimate_source = _endpoint(chain[0][0], source.source)
            root.connections.append(
                ConnectionInstance(ultimate_source, feature, chain)
            )
        # A path ending on a non-leaf feature with no further hops is an
        # unterminated connection; tolerated (open system boundary).
        return
    # A feature of a thread/device reached mid-path with further outgoing
    # edges is itself an ultimate destination only if it is an *in* port of
    # a leaf; leaf out-ports start new semantic connections instead.
    if chain and feature.component.category.can_be_ultimate_endpoint:
        if feature.feature.direction.accepts_incoming:
            source = chain[0][1]
            ultimate_source = _endpoint(chain[0][0], source.source)
            root.connections.append(
                ConnectionInstance(ultimate_source, feature, chain)
            )
            return
    visiting = visiting | {feature}
    for dst, owner_conn in outgoing:
        _follow(root, dst, chain + [owner_conn], edges, visiting)


def _check_port_endpoint(
    conn: Connection,
    src: FeatureInstance,
    dst: FeatureInstance,
    owner: ComponentInstance,
) -> None:
    for endpoint, what in ((src, "source"), (dst, "destination")):
        if not endpoint.is_port:
            raise AadlInstantiationError(
                f"connection {conn.name} in {owner.qualified_name}: "
                f"{what} {endpoint.qualified_name} is not a port"
            )
    # Direction legality: a connection source must carry data outward
    # along the hop, the destination inward.  Features of the enclosing
    # component itself are traversed "inside-out": an in port of the
    # owner is a legal source (data descending into a subcomponent), an
    # out port a legal destination (data ascending).
    src_ok = (
        src.feature.direction.accepts_incoming
        if src.component is owner
        else src.feature.direction.produces_outgoing
    )
    dst_ok = (
        dst.feature.direction.produces_outgoing
        if dst.component is owner
        else dst.feature.direction.accepts_incoming
    )
    if not src_ok:
        raise AadlInstantiationError(
            f"connection {conn.name} in {owner.qualified_name}: source "
            f"{src.qualified_name} has direction "
            f"'{src.feature.direction.value}'"
        )
    if not dst_ok:
        raise AadlInstantiationError(
            f"connection {conn.name} in {owner.qualified_name}: "
            f"destination {dst.qualified_name} has direction "
            f"'{dst.feature.direction.value}'"
        )


def _resolve_bindings(root: SystemInstance) -> None:
    # Thread -> processor (or virtual processor) bindings.
    for thread in root.threads():
        found = thread.property_with_holder(ACTUAL_PROCESSOR_BINDING)
        if found is None:
            continue
        value, holder = found
        if not isinstance(value, ReferenceValue):
            raise AadlPropertyError(
                f"{thread.qualified_name}: Actual_Processor_Binding must "
                f"be a reference value, got {value!r}"
            )
        target = holder.resolve_path(value.path)
        if target.category not in (
            ComponentCategory.PROCESSOR,
            ComponentCategory.VIRTUAL_PROCESSOR,
        ):
            raise AadlPropertyError(
                f"{thread.qualified_name}: bound to non-processor "
                f"{target.qualified_name}"
            )
        thread.bound_processor = target

    # Virtual processor -> physical processor bindings (the ARINC-653
    # partition-to-module mapping).
    for vproc in root.virtual_processors():
        found = vproc.property_with_holder(ACTUAL_PROCESSOR_BINDING)
        if found is None:
            continue
        value, holder = found
        if not isinstance(value, ReferenceValue):
            raise AadlPropertyError(
                f"{vproc.qualified_name}: Actual_Processor_Binding must "
                f"be a reference value, got {value!r}"
            )
        target = holder.resolve_path(value.path)
        if target.category is not ComponentCategory.PROCESSOR:
            raise AadlPropertyError(
                f"{vproc.qualified_name}: virtual processor bound to "
                f"non-processor {target.qualified_name}"
            )
        vproc.bound_processor = target

    # Connection -> bus bindings.
    for sem_conn in root.connections:
        for owner, conn in sem_conn.syntactic:
            value = conn.own_property(ACTUAL_CONNECTION_BINDING)
            if value is None:
                continue
            values = value if isinstance(value, tuple) else (value,)
            for item in values:
                if not isinstance(item, ReferenceValue):
                    raise AadlPropertyError(
                        f"connection {conn.name}: Actual_Connection_Binding "
                        f"must be reference value(s), got {item!r}"
                    )
                target = owner.resolve_path(item.path)
                if target.category not in (
                    ComponentCategory.BUS,
                    ComponentCategory.PROCESSOR,
                    ComponentCategory.MEMORY,
                ):
                    raise AadlPropertyError(
                        f"connection {conn.name}: bound to "
                        f"{target.category.value} {target.qualified_name}"
                    )
                if target not in sem_conn.buses:
                    sem_conn.buses.append(target)


def _access_endpoint(owner: ComponentInstance, ref):
    """An access-connection endpoint: either a data/bus subcomponent of
    ``owner`` (bare name) or an access feature (``sub.feature`` or a
    feature of owner itself)."""
    if ref.is_self:
        key = ref.feature.lower()
        child = owner.children.get(key)
        if child is not None and child.category in (
            ComponentCategory.DATA,
            ComponentCategory.BUS,
        ):
            return child
        return owner.feature(ref.feature)
    return owner.child(ref.subcomponent).feature(ref.feature)


def _resolve_access_connections(
    root: SystemInstance, overrides: Dict[str, str]
) -> None:
    """Resolve ``data access`` connections into (feature, component)
    pairs, following access features up/down one containment level.

    Multi-hop access chains (through intermediate component access
    features) resolve transitively like port connections."""
    from repro.aadl.connections import ConnectionKind
    from repro.aadl.features import AccessFeature

    # feature-or-component endpoints; edges run both directions because
    # AADL allows writing access connections either way around.
    edges: Dict[object, List[Tuple[object, Tuple]]] = {}
    for inst in root.self_and_descendants():
        impl = inst.impl
        if impl is None:
            continue
        for conn in impl.connections:
            if conn.kind is not ConnectionKind.ACCESS:
                continue
            if not _active_in_mode(conn, impl, overrides):
                continue
            try:
                left = _access_endpoint(inst, conn.source)
                right = _access_endpoint(inst, conn.destination)
            except AadlNameError as exc:
                raise AadlInstantiationError(
                    f"access connection {conn.name} in "
                    f"{inst.qualified_name}: {exc}"
                ) from exc
            edges.setdefault(left, []).append((right, (inst, conn)))
            edges.setdefault(right, []).append((left, (inst, conn)))

    # For every thread requires-access feature, search for a reachable
    # data/bus component.
    for thread in root.threads():
        for feature in thread.features.values():
            decl = feature.feature
            if not isinstance(decl, AccessFeature):
                continue
            # BFS over the access graph.
            queue = [(feature, [])]
            seen = {feature}
            while queue:
                node, chain = queue.pop(0)
                for target, owner_conn in edges.get(node, []):
                    if target in seen:
                        continue
                    seen.add(target)
                    if isinstance(target, ComponentInstance):
                        root.access_connections.append(
                            AccessConnectionInstance(
                                feature, target, chain + [owner_conn]
                            )
                        )
                    else:
                        queue.append((target, chain + [owner_conn]))
