"""Modes and mode transitions (paper S2, "Modes").

AADL components can be multi-modal: the set of active subcomponents and
connections changes when a mode transition fires in response to an event.
The paper's translation presentation omits modes ("quite involved"); we
model them in the AADL layer -- subcomponents and connections carry
``in_modes`` lists, and implementations carry a mode automaton -- and the
translator restricts itself to the subcomponents/connections active in the
initial system operation mode, rejecting models whose schedulability would
depend on mode switching (see ``repro.aadl.validation``).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import AadlError


class Mode:
    """A named mode of a component implementation."""

    __slots__ = ("name", "initial")

    def __init__(self, name: str, initial: bool = False) -> None:
        if not isinstance(name, str) or not name:
            raise AadlError(f"invalid mode name {name!r}")
        self.name = name
        self.initial = initial

    def __repr__(self) -> str:
        marker = ", initial" if self.initial else ""
        return f"Mode({self.name!r}{marker})"


class ModeTransition:
    """``source -[trigger]-> target`` where the trigger is an event-port
    reference (``sub.port`` or ``port``)."""

    __slots__ = ("source", "trigger", "target")

    def __init__(self, source: str, trigger: str, target: str) -> None:
        for value, what in ((source, "source"), (target, "target")):
            if not isinstance(value, str) or not value:
                raise AadlError(f"invalid mode transition {what} {value!r}")
        if not isinstance(trigger, str) or not trigger:
            raise AadlError(f"invalid mode transition trigger {trigger!r}")
        self.source = source
        self.trigger = trigger
        self.target = target

    def __repr__(self) -> str:
        return (
            f"ModeTransition({self.source!r} -[{self.trigger}]-> "
            f"{self.target!r})"
        )
