"""AADL substrate: object model, textual parser, instantiation.

This package implements the slice of AADL (SAE AS5506, Nov 2004) that the
paper's translation consumes:

* component categories: system, process, thread, processor, bus, memory,
  device, data;
* features: data / event / event-data ports, data and bus access;
* syntactic connections plus resolution into *semantic* connections
  (ultimate source -> ultimate destination through the component
  hierarchy, paper S2);
* modes and mode transitions (modeled; translation handles the
  single-mode case, as the paper's presentation does);
* the standard properties the translation requires (paper S4.1):
  ``Dispatch_Protocol``, ``Period``, ``Compute_Execution_Time``,
  ``Compute_Deadline``/``Deadline``, ``Scheduling_Protocol``,
  ``Priority``, ``Queue_Size``, ``Overflow_Handling_Protocol``,
  ``Urgency``, ``Actual_Processor_Binding``, ``Actual_Connection_Binding``;
* instantiation of a declarative model into a component-instance tree with
  resolved bindings, plus the legality checks of S4.1.

Models can be built three ways: parsing textual AADL
(:func:`parse_model`), the fluent :class:`~repro.aadl.builder.SystemBuilder`,
or directly through the object model.
"""

from repro.aadl.properties import (
    DispatchProtocol,
    OverflowHandlingProtocol,
    PropertyAssociation,
    SchedulingProtocol,
    TimeRange,
    TimeValue,
    ms,
    us,
)
from repro.aadl.features import (
    AccessFeature,
    Feature,
    Port,
    PortDirection,
    PortKind,
)
from repro.aadl.components import (
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    DeclarativeModel,
    Subcomponent,
)
from repro.aadl.connections import Connection, ConnectionRef
from repro.aadl.modes import Mode, ModeTransition
from repro.aadl.instance import (
    ComponentInstance,
    ConnectionInstance,
    FeatureInstance,
    SystemInstance,
    SystemSlice,
    infer_root,
    instantiate,
    slice_instance,
)
from repro.aadl.validation import check_translation_assumptions
from repro.aadl.parser import parse_model
from repro.aadl.printer import format_model
from repro.aadl.builder import SystemBuilder

__all__ = [
    "AccessFeature",
    "ComponentCategory",
    "ComponentImplementation",
    "ComponentInstance",
    "ComponentType",
    "Connection",
    "ConnectionInstance",
    "ConnectionRef",
    "DeclarativeModel",
    "DispatchProtocol",
    "Feature",
    "FeatureInstance",
    "Mode",
    "ModeTransition",
    "OverflowHandlingProtocol",
    "Port",
    "PortDirection",
    "PortKind",
    "PropertyAssociation",
    "SchedulingProtocol",
    "Subcomponent",
    "SystemBuilder",
    "SystemInstance",
    "SystemSlice",
    "TimeRange",
    "TimeValue",
    "check_translation_assumptions",
    "format_model",
    "infer_root",
    "instantiate",
    "ms",
    "parse_model",
    "slice_instance",
    "us",
]
