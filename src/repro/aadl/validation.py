"""Legality checks: the translation assumptions of paper S4.1.

The translation applies to *completely instantiated and bound* systems:

1. at least one thread and one processor; every thread bound to a
   processor;
2. every non-periodic thread (aperiodic, sporadic, background) has an
   incoming connection on each ``in event`` / ``in event data`` port;
3. every thread declares ``Dispatch_Protocol``,
   ``Compute_Execution_Time`` and ``Compute_Deadline`` (we accept
   ``Deadline`` as a stand-in, and additionally require ``Period`` for
   periodic and sporadic threads -- the period/minimum-separation of
   Figure 6);
4. every processor with bound threads declares ``Scheduling_Protocol``;
5. under HPF scheduling, every bound thread declares ``Priority``.

``check_translation_assumptions`` raises :class:`AadlLegalityError` with
all violations collected, so a modeler sees every problem at once.

Mode declarations get their own declarative-level pass
(:func:`collect_mode_violations`): a transition whose trigger names a
non-existent subcomponent or port, a transition between undeclared
modes, or an implementation with zero or several ``initial`` modes.
These are checked *before* instantiation -- a duplicate ``initial``
makes :meth:`~repro.aadl.components.ComponentImplementation.initial_mode`
raise, so instance-level validation would never get to see it --
and folded into :func:`collect_violations` for instances as well.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AadlLegalityError
from repro.aadl.components import ComponentCategory
from repro.aadl.features import PortKind
from repro.aadl.instance import SystemInstance
from repro.aadl.properties import (
    COMPUTE_DEADLINE,
    COMPUTE_EXECUTION_TIME,
    DEADLINE,
    DISPATCH_PROTOCOL,
    EXECUTION_TIME,
    PERIOD,
    PRIORITY,
    SCHEDULING_PROTOCOL,
    DispatchProtocol,
    SchedulingProtocol,
    TimeValue,
)


def check_translation_assumptions(instance: SystemInstance) -> None:
    """Raise :class:`AadlLegalityError` listing every violated assumption."""
    problems = collect_violations(instance)
    if problems:
        raise AadlLegalityError(
            "model violates translation assumptions:\n  - "
            + "\n  - ".join(problems)
        )


def collect_mode_violations(model, impl=None) -> List[str]:
    """Mode-declaration violations of ``model`` (or of one ``impl``).

    Declarative-level, so it works on models that cannot instantiate:

    * an implementation with modes must declare exactly one ``initial``
      mode (duplicates are the classic copy-paste defect);
    * every transition's source and target must be declared modes;
    * every transition trigger must reference an existing port -- either
      ``sub.port`` with ``sub`` a declared subcomponent whose type has
      the port, or a bare feature of the implementation's own type.
    """
    impls = [impl] if impl is not None else model.implementations()
    problems: List[str] = []
    for one in impls:
        if not one.modes and not one.mode_transitions:
            continue
        initials = [m.name for m in one.modes.values() if m.initial]
        if len(initials) == 0 and one.modes:
            problems.append(
                f"{one.name}: declares modes but no initial mode"
            )
        elif len(initials) > 1:
            problems.append(
                f"{one.name}: duplicate initial modes "
                f"({', '.join(initials)}); exactly one is required"
            )
        mode_names = set(one.modes)
        for transition in one.mode_transitions:
            label = (
                f"{transition.source} -[{transition.trigger}]-> "
                f"{transition.target}"
            )
            if transition.source.lower() not in mode_names:
                problems.append(
                    f"{one.name}: transition {label}: source mode "
                    f"{transition.source!r} is not declared"
                )
            if transition.target.lower() not in mode_names:
                problems.append(
                    f"{one.name}: transition {label}: target mode "
                    f"{transition.target!r} is not declared"
                )
            problem = _trigger_violation(model, one, transition.trigger)
            if problem is not None:
                problems.append(f"{one.name}: transition {label}: {problem}")
    return problems


def _trigger_violation(model, impl, trigger: str) -> Optional[str]:
    """Why ``trigger`` does not name a port visible to ``impl``, or None."""
    from repro.errors import AadlError

    if "." in trigger:
        sub_name, port_name = trigger.split(".", 1)
        sub = impl.subcomponents.get(sub_name.lower())
        if sub is None:
            return (
                f"trigger references non-existent subcomponent "
                f"{sub_name!r}"
            )
        try:
            ctype, _ = model.resolve(sub.classifier)
        except AadlError:
            # Unresolvable classifiers are reported by instantiation;
            # the trigger itself is not at fault.
            return None
        if port_name.lower() not in ctype.features:
            return (
                f"trigger references non-existent port {port_name!r} "
                f"on subcomponent {sub_name!r} ({ctype.name})"
            )
        return None
    try:
        own_type = model.type_of_impl(impl)
    except AadlError:
        return None
    if trigger.lower() not in own_type.features:
        return (
            f"trigger references non-existent feature {trigger!r} "
            f"of type {own_type.name}"
        )
    return None


def collect_violations(instance: SystemInstance) -> List[str]:
    """All violations of the paper S4.1 assumptions, as messages."""
    problems: List[str] = []

    # Mode-declaration legality of every implementation in the tree
    # (declarative-level; deduplicated since many subcomponents can
    # share one implementation).
    seen_impls = set()
    for node in [instance, *instance.descendants()]:
        impl = getattr(node, "impl", None)
        if impl is None or impl.name in seen_impls:
            continue
        seen_impls.add(impl.name)
        problems.extend(collect_mode_violations(instance.declarative, impl))
    threads = instance.threads()
    processors = instance.processors()

    if not threads:
        problems.append("system contains no thread components")
    if not processors:
        problems.append("system contains no processor components")

    for thread in threads:
        name = thread.qualified_name
        if thread.bound_processor is None:
            problems.append(f"thread {name} is not bound to a processor")

        protocol = thread.property(DISPATCH_PROTOCOL)
        if protocol is None:
            problems.append(f"thread {name} lacks Dispatch_Protocol")
        elif not isinstance(protocol, DispatchProtocol):
            problems.append(
                f"thread {name}: Dispatch_Protocol has non-enum value "
                f"{protocol!r}"
            )

        if thread.property(COMPUTE_EXECUTION_TIME) is None:
            problems.append(f"thread {name} lacks Compute_Execution_Time")
        if (
            thread.property(COMPUTE_DEADLINE) is None
            and thread.property(DEADLINE) is None
        ):
            problems.append(
                f"thread {name} lacks Compute_Deadline (or Deadline)"
            )
        if isinstance(protocol, DispatchProtocol) and protocol in (
            DispatchProtocol.PERIODIC,
            DispatchProtocol.SPORADIC,
        ):
            if thread.property(PERIOD) is None:
                problems.append(
                    f"{protocol.value.lower()} thread {name} lacks Period"
                )

        if isinstance(protocol, DispatchProtocol) and protocol in (
            DispatchProtocol.APERIODIC,
            DispatchProtocol.SPORADIC,
        ):
            for feature in thread.features.values():
                if not feature.is_port:
                    continue
                port = feature.feature
                if (
                    port.direction.accepts_incoming
                    and port.kind.can_dispatch
                ):
                    incoming = [
                        conn
                        for conn in instance.connections
                        if conn.destination is feature
                    ]
                    if not incoming:
                        problems.append(
                            f"non-periodic thread {name}: in "
                            f"{port.kind.value} port {port.name} has no "
                            f"incoming connection"
                        )

    for processor in processors:
        bound = [t for t in threads if t.bound_processor is processor]
        if not bound:
            continue
        protocol = processor.property(SCHEDULING_PROTOCOL)
        if protocol is None:
            problems.append(
                f"processor {processor.qualified_name} has bound threads "
                f"but lacks Scheduling_Protocol"
            )
            continue
        if not isinstance(protocol, SchedulingProtocol):
            problems.append(
                f"processor {processor.qualified_name}: Scheduling_Protocol "
                f"has non-enum value {protocol!r}"
            )
            continue
        if protocol is SchedulingProtocol.HIGHEST_PRIORITY_FIRST:
            for thread in bound:
                if thread.property_int(PRIORITY) is None:
                    problems.append(
                        f"thread {thread.qualified_name} bound to HPF "
                        f"processor lacks Priority"
                    )

    for vproc in instance.virtual_processors():
        name = vproc.qualified_name
        bound = [t for t in threads if t.bound_processor is vproc]
        if vproc.bound_processor is None:
            problems.append(
                f"virtual processor {name} is not bound to a processor"
            )
        if not bound:
            continue
        period = vproc.property(PERIOD)
        budget = vproc.property(EXECUTION_TIME)
        if period is None:
            problems.append(
                f"virtual processor {name} has bound threads but lacks "
                f"Period (replenishment)"
            )
        if budget is None:
            problems.append(
                f"virtual processor {name} has bound threads but lacks "
                f"Execution_Time (budget)"
            )
        if (
            isinstance(period, TimeValue)
            and isinstance(budget, TimeValue)
            and budget.picoseconds > period.picoseconds
        ):
            problems.append(
                f"virtual processor {name}: Execution_Time exceeds Period"
            )
        protocol = vproc.property(SCHEDULING_PROTOCOL)
        if protocol is None:
            problems.append(
                f"virtual processor {name} has bound threads but lacks "
                f"Scheduling_Protocol"
            )
        elif not isinstance(protocol, SchedulingProtocol):
            problems.append(
                f"virtual processor {name}: Scheduling_Protocol has "
                f"non-enum value {protocol!r}"
            )
        elif protocol is SchedulingProtocol.HIGHEST_PRIORITY_FIRST:
            for thread in bound:
                if thread.property_int(PRIORITY) is None:
                    problems.append(
                        f"thread {thread.qualified_name} bound to HPF "
                        f"virtual processor lacks Priority"
                    )

    return problems
