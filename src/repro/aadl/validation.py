"""Legality checks: the translation assumptions of paper S4.1.

The translation applies to *completely instantiated and bound* systems:

1. at least one thread and one processor; every thread bound to a
   processor;
2. every non-periodic thread (aperiodic, sporadic, background) has an
   incoming connection on each ``in event`` / ``in event data`` port;
3. every thread declares ``Dispatch_Protocol``,
   ``Compute_Execution_Time`` and ``Compute_Deadline`` (we accept
   ``Deadline`` as a stand-in, and additionally require ``Period`` for
   periodic and sporadic threads -- the period/minimum-separation of
   Figure 6);
4. every processor with bound threads declares ``Scheduling_Protocol``;
5. under HPF scheduling, every bound thread declares ``Priority``.

``check_translation_assumptions`` raises :class:`AadlLegalityError` with
all violations collected, so a modeler sees every problem at once.
"""

from __future__ import annotations

from typing import List

from repro.errors import AadlLegalityError
from repro.aadl.components import ComponentCategory
from repro.aadl.features import PortKind
from repro.aadl.instance import SystemInstance
from repro.aadl.properties import (
    COMPUTE_DEADLINE,
    COMPUTE_EXECUTION_TIME,
    DEADLINE,
    DISPATCH_PROTOCOL,
    EXECUTION_TIME,
    PERIOD,
    PRIORITY,
    SCHEDULING_PROTOCOL,
    DispatchProtocol,
    SchedulingProtocol,
    TimeValue,
)


def check_translation_assumptions(instance: SystemInstance) -> None:
    """Raise :class:`AadlLegalityError` listing every violated assumption."""
    problems = collect_violations(instance)
    if problems:
        raise AadlLegalityError(
            "model violates translation assumptions:\n  - "
            + "\n  - ".join(problems)
        )


def collect_violations(instance: SystemInstance) -> List[str]:
    """All violations of the paper S4.1 assumptions, as messages."""
    problems: List[str] = []
    threads = instance.threads()
    processors = instance.processors()

    if not threads:
        problems.append("system contains no thread components")
    if not processors:
        problems.append("system contains no processor components")

    for thread in threads:
        name = thread.qualified_name
        if thread.bound_processor is None:
            problems.append(f"thread {name} is not bound to a processor")

        protocol = thread.property(DISPATCH_PROTOCOL)
        if protocol is None:
            problems.append(f"thread {name} lacks Dispatch_Protocol")
        elif not isinstance(protocol, DispatchProtocol):
            problems.append(
                f"thread {name}: Dispatch_Protocol has non-enum value "
                f"{protocol!r}"
            )

        if thread.property(COMPUTE_EXECUTION_TIME) is None:
            problems.append(f"thread {name} lacks Compute_Execution_Time")
        if (
            thread.property(COMPUTE_DEADLINE) is None
            and thread.property(DEADLINE) is None
        ):
            problems.append(
                f"thread {name} lacks Compute_Deadline (or Deadline)"
            )
        if isinstance(protocol, DispatchProtocol) and protocol in (
            DispatchProtocol.PERIODIC,
            DispatchProtocol.SPORADIC,
        ):
            if thread.property(PERIOD) is None:
                problems.append(
                    f"{protocol.value.lower()} thread {name} lacks Period"
                )

        if isinstance(protocol, DispatchProtocol) and protocol in (
            DispatchProtocol.APERIODIC,
            DispatchProtocol.SPORADIC,
        ):
            for feature in thread.features.values():
                if not feature.is_port:
                    continue
                port = feature.feature
                if (
                    port.direction.accepts_incoming
                    and port.kind.can_dispatch
                ):
                    incoming = [
                        conn
                        for conn in instance.connections
                        if conn.destination is feature
                    ]
                    if not incoming:
                        problems.append(
                            f"non-periodic thread {name}: in "
                            f"{port.kind.value} port {port.name} has no "
                            f"incoming connection"
                        )

    for processor in processors:
        bound = [t for t in threads if t.bound_processor is processor]
        if not bound:
            continue
        protocol = processor.property(SCHEDULING_PROTOCOL)
        if protocol is None:
            problems.append(
                f"processor {processor.qualified_name} has bound threads "
                f"but lacks Scheduling_Protocol"
            )
            continue
        if not isinstance(protocol, SchedulingProtocol):
            problems.append(
                f"processor {processor.qualified_name}: Scheduling_Protocol "
                f"has non-enum value {protocol!r}"
            )
            continue
        if protocol is SchedulingProtocol.HIGHEST_PRIORITY_FIRST:
            for thread in bound:
                if thread.property_int(PRIORITY) is None:
                    problems.append(
                        f"thread {thread.qualified_name} bound to HPF "
                        f"processor lacks Priority"
                    )

    for vproc in instance.virtual_processors():
        name = vproc.qualified_name
        bound = [t for t in threads if t.bound_processor is vproc]
        if vproc.bound_processor is None:
            problems.append(
                f"virtual processor {name} is not bound to a processor"
            )
        if not bound:
            continue
        period = vproc.property(PERIOD)
        budget = vproc.property(EXECUTION_TIME)
        if period is None:
            problems.append(
                f"virtual processor {name} has bound threads but lacks "
                f"Period (replenishment)"
            )
        if budget is None:
            problems.append(
                f"virtual processor {name} has bound threads but lacks "
                f"Execution_Time (budget)"
            )
        if (
            isinstance(period, TimeValue)
            and isinstance(budget, TimeValue)
            and budget.picoseconds > period.picoseconds
        ):
            problems.append(
                f"virtual processor {name}: Execution_Time exceeds Period"
            )
        protocol = vproc.property(SCHEDULING_PROTOCOL)
        if protocol is None:
            problems.append(
                f"virtual processor {name} has bound threads but lacks "
                f"Scheduling_Protocol"
            )
        elif not isinstance(protocol, SchedulingProtocol):
            problems.append(
                f"virtual processor {name}: Scheduling_Protocol has "
                f"non-enum value {protocol!r}"
            )
        elif protocol is SchedulingProtocol.HIGHEST_PRIORITY_FIRST:
            for thread in bound:
                if thread.property_int(PRIORITY) is None:
                    problems.append(
                        f"thread {thread.qualified_name} bound to HPF "
                        f"virtual processor lacks Priority"
                    )

    return problems
