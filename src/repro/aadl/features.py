"""Component features: ports and access features (paper S2).

Features are the externally visible interaction points of a component
type.  The translation cares about:

* **data ports** -- unqueued state variables; a data connection delivers a
  value, never dispatches;
* **event ports** -- queued signals; an event connection can dispatch a
  sporadic/aperiodic thread;
* **event data ports** -- queued messages, dispatching like event ports;
* **access features** -- required/provided access to shared data or buses.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import AadlError
from repro.aadl.properties import PropertyHolder


class PortDirection(enum.Enum):
    IN = "in"
    OUT = "out"
    IN_OUT = "in out"

    @property
    def accepts_incoming(self) -> bool:
        return self in (PortDirection.IN, PortDirection.IN_OUT)

    @property
    def produces_outgoing(self) -> bool:
        return self in (PortDirection.OUT, PortDirection.IN_OUT)


class PortKind(enum.Enum):
    DATA = "data"
    EVENT = "event"
    EVENT_DATA = "event data"

    @property
    def is_queued(self) -> bool:
        """Event and event-data ports queue arrivals; data ports do not."""
        return self is not PortKind.DATA

    @property
    def can_dispatch(self) -> bool:
        """Arrival on this kind of port can dispatch a non-periodic thread."""
        return self.is_queued


class Feature(PropertyHolder):
    """Base class of component features."""

    def __init__(self, name: str) -> None:
        super().__init__()
        if not isinstance(name, str) or not name:
            raise AadlError(f"invalid feature name {name!r}")
        self.name = name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Port(Feature):
    """A data, event, or event-data port."""

    def __init__(
        self, name: str, direction: PortDirection, kind: PortKind
    ) -> None:
        super().__init__(name)
        if not isinstance(direction, PortDirection):
            raise AadlError(f"invalid port direction {direction!r}")
        if not isinstance(kind, PortKind):
            raise AadlError(f"invalid port kind {kind!r}")
        self.direction = direction
        self.kind = kind

    def __repr__(self) -> str:
        return (
            f"Port({self.name!r}, {self.direction.value}, {self.kind.value})"
        )


class AccessKind(enum.Enum):
    REQUIRES = "requires"
    PROVIDES = "provides"


class AccessCategory(enum.Enum):
    DATA = "data"
    BUS = "bus"


class AccessFeature(Feature):
    """Required or provided access to a shared data component or a bus."""

    def __init__(
        self,
        name: str,
        kind: AccessKind,
        category: AccessCategory,
        classifier: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if not isinstance(kind, AccessKind):
            raise AadlError(f"invalid access kind {kind!r}")
        if not isinstance(category, AccessCategory):
            raise AadlError(f"invalid access category {category!r}")
        self.kind = kind
        self.category = category
        self.classifier = classifier

    def __repr__(self) -> str:
        return (
            f"AccessFeature({self.name!r}, {self.kind.value}, "
            f"{self.category.value})"
        )
