"""Parser for a textual-AADL subset (SAE AS5506 core syntax).

Supported declarations::

    thread T
      features
        d: out data port;
        e: in event port { Queue_Size => 4; };
      properties
        Dispatch_Protocol => Periodic;
        Period => 20 ms;
        Compute_Execution_Time => 2 ms .. 3 ms;
        Compute_Deadline => 20 ms;
    end T;

    system implementation CC.impl
      subcomponents
        t1: thread T;
        cpu: processor P;
      connections
        c1: port t1.d -> t2.e { Actual_Connection_Binding => reference(net); };
      modes
        nominal: initial mode;
        recovery: mode;
        m1: nominal -[t1.fail]-> recovery;
      properties
        Actual_Processor_Binding => reference(cpu) applies to t1;
    end CC.impl;

Keywords are case-insensitive; ``--`` starts a line comment.  Property
values: integers, time values (``10 ms``), time ranges (``1 ms .. 3 ms``),
enumeration identifiers (typed for the standard scheduling properties),
``reference(a.b)``, parenthesized lists, and strings.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.errors import AadlSyntaxError
from repro.aadl.components import (
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    DeclarativeModel,
    Subcomponent,
)
from repro.aadl.connections import Connection, ConnectionKind, ConnectionRef
from repro.aadl.features import (
    AccessCategory,
    AccessFeature,
    AccessKind,
    Port,
    PortDirection,
    PortKind,
)
from repro.aadl.modes import Mode, ModeTransition
from repro.aadl.properties import (
    DISPATCH_PROTOCOL,
    OVERFLOW_HANDLING_PROTOCOL,
    SCHEDULING_PROTOCOL,
    DispatchProtocol,
    OverflowHandlingProtocol,
    PropertyHolder,
    ReferenceValue,
    SchedulingProtocol,
    TimeRange,
    TimeValue,
    _canonical_name,
)

_TIME_UNITS = {"ps", "ns", "us", "ms", "sec", "min", "hr"}

# Two-word categories ("thread group", "virtual processor") are
# recognized by their leading word plus a follow-up token check.
_CATEGORY_WORDS = {c.value for c in ComponentCategory} | {"virtual"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"[^"\n]*")
  | (?P<op>::|\.\.|->|-\[|\]->|[=>(){};:,.])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    @property
    def lower(self) -> str:
        return self.text.lower()

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            col = pos - line_start + 1
            raise AadlSyntaxError(f"unexpected character {text[pos]!r}", line, col)
        if match.lastgroup != "ws":
            col = match.start() - line_start + 1
            kind = match.lastgroup
            tok_text = match.group()
            # '=>' is tokenized as '=' '>' only if regex missed; ensure combined
            tokens.append(_Token(kind, tok_text, line, col))  # type: ignore[arg-type]
        newlines = match.group().count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + match.group().rfind("\n") + 1
        pos = match.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _merge_arrows(_tokenize(text))
        self.index = 0

    def peek(self, offset: int = 0) -> _Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, message: str) -> AadlSyntaxError:
        token = self.peek()
        return AadlSyntaxError(message, token.line, token.column)

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.lower != text.lower():
            raise self.error(
                f"expected {text!r}, found {token.text or '<eof>'!r}"
            )
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.peek().lower == text.lower():
            self.advance()
            return True
        return False

    def at(self, text: str) -> bool:
        return self.peek().lower == text.lower()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise self.error(
                f"expected identifier, found {token.text or '<eof>'!r}"
            )
        self.advance()
        return token.text

    # -- model level ---------------------------------------------------------

    def parse_model(self) -> DeclarativeModel:
        model = DeclarativeModel()
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind != "ident" or token.lower not in _CATEGORY_WORDS:
                raise self.error(
                    f"expected a component category, found {token.text!r}"
                )
            word = self.advance()
            if word.lower == "virtual":
                self.expect("processor")
                category = ComponentCategory.VIRTUAL_PROCESSOR
            else:
                category = ComponentCategory.parse(word.text)
                if category is ComponentCategory.THREAD and self.accept(
                    "group"
                ):
                    category = ComponentCategory.THREAD_GROUP
            if self.at("implementation"):
                self.advance()
                impl = self.parse_implementation(category, model)
                model.add_implementation(impl)
            else:
                ctype = self.parse_type(category)
                model.add_type(ctype)
        return model

    def parse_type(self, category: ComponentCategory) -> ComponentType:
        name = self.expect_ident()
        ctype = ComponentType(name, category)
        if self.accept("features"):
            while not self.at("properties") and not self.at("end"):
                self.parse_feature(ctype)
        if self.accept("properties"):
            while not self.at("end"):
                self.parse_property_assoc(ctype)
        self.expect("end")
        end_name = self.expect_ident()
        if end_name.lower() != name.lower():
            raise self.error(
                f"'end {end_name}' does not match '{name}'"
            )
        self.expect(";")
        return ctype

    def parse_feature(self, ctype: ComponentType) -> None:
        name = self.expect_ident()
        self.expect(":")
        word = self.peek().lower
        if word in ("in", "out"):
            direction = self.parse_direction()
            kind = self.parse_port_kind()
            self.expect("port")
            port = Port(name, direction, kind)
            self.parse_optional_property_block(port)
            self.expect(";")
            ctype.add_feature(port)
        elif word in ("requires", "provides"):
            access_kind = (
                AccessKind.REQUIRES if self.accept("requires") else
                (self.expect("provides"), AccessKind.PROVIDES)[1]
            )
            cat_word = self.peek().lower
            if cat_word == "data":
                self.advance()
                category = AccessCategory.DATA
            elif cat_word == "bus":
                self.advance()
                category = AccessCategory.BUS
            else:
                raise self.error(
                    f"expected 'data' or 'bus' access, found {cat_word!r}"
                )
            self.expect("access")
            classifier = None
            if self.peek().kind == "ident" and not self.at(";"):
                classifier = self.parse_classifier()
            feature = AccessFeature(name, access_kind, category, classifier)
            self.parse_optional_property_block(feature)
            self.expect(";")
            ctype.add_feature(feature)
        else:
            raise self.error(
                f"expected a port or access feature, found {word!r}"
            )

    def parse_direction(self) -> PortDirection:
        if self.accept("in"):
            if self.accept("out"):
                return PortDirection.IN_OUT
            return PortDirection.IN
        self.expect("out")
        return PortDirection.OUT

    def parse_port_kind(self) -> PortKind:
        if self.accept("data"):
            return PortKind.DATA
        self.expect("event")
        if self.accept("data"):
            return PortKind.EVENT_DATA
        return PortKind.EVENT

    def parse_classifier(self) -> str:
        name = self.expect_ident()
        if self.accept("."):
            name += "." + self.expect_ident()
        return name

    def parse_implementation(
        self, category: ComponentCategory, model: DeclarativeModel
    ) -> ComponentImplementation:
        type_name = self.expect_ident()
        self.expect(".")
        impl_suffix = self.expect_ident()
        impl = ComponentImplementation(f"{type_name}.{impl_suffix}")
        if self.accept("subcomponents"):
            while (
                self.peek().lower
                not in ("connections", "modes", "properties", "end")
            ):
                self.parse_subcomponent(impl)
        if self.accept("connections"):
            while self.peek().lower not in ("modes", "properties", "end"):
                self.parse_connection(impl)
        if self.accept("modes"):
            while self.peek().lower not in ("properties", "end"):
                self.parse_mode_decl(impl)
        if self.accept("properties"):
            while not self.at("end"):
                self.parse_property_assoc(impl)
        self.expect("end")
        end_type = self.expect_ident()
        self.expect(".")
        end_suffix = self.expect_ident()
        if (
            end_type.lower() != type_name.lower()
            or end_suffix.lower() != impl_suffix.lower()
        ):
            raise self.error(
                f"'end {end_type}.{end_suffix}' does not match "
                f"'{type_name}.{impl_suffix}'"
            )
        self.expect(";")
        return impl

    def parse_subcomponent(self, impl: ComponentImplementation) -> None:
        name = self.expect_ident()
        self.expect(":")
        category_word = self.advance()
        if category_word.lower not in _CATEGORY_WORDS:
            raise self.error(
                f"expected a component category, found {category_word.text!r}"
            )
        if category_word.lower == "virtual":
            self.expect("processor")
            category = ComponentCategory.VIRTUAL_PROCESSOR
        else:
            category = ComponentCategory.parse(category_word.text)
            if category is ComponentCategory.THREAD and self.at("group"):
                self.advance()
                category = ComponentCategory.THREAD_GROUP
        classifier = self.parse_classifier()
        sub = Subcomponent(name, category, classifier)
        self.parse_optional_property_block(sub)
        in_modes = self.parse_optional_in_modes()
        sub.in_modes = in_modes
        self.expect(";")
        impl.add_subcomponent(sub)

    def parse_connection(self, impl: ComponentImplementation) -> None:
        name = self.expect_ident()
        self.expect(":")
        if self.accept("port"):
            kind = ConnectionKind.PORT
        elif self.accept("data"):
            # 'data access' connection
            self.expect("access")
            kind = ConnectionKind.ACCESS
        else:
            # Classic AADL 1.0 also allows 'data port'/'event port'
            # connection keywords; accept and normalize.
            if self.accept("event"):
                self.accept("data")
                self.expect("port")
                kind = ConnectionKind.PORT
            else:
                raise self.error("expected 'port' or 'data access'")
        source = ConnectionRef.parse(self.parse_endpoint())
        self.expect("->")
        destination = ConnectionRef.parse(self.parse_endpoint())
        conn = Connection(name, source, destination, kind)
        self.parse_optional_property_block(conn)
        conn.in_modes = self.parse_optional_in_modes()
        self.expect(";")
        impl.add_connection(conn)

    def parse_endpoint(self) -> str:
        text = self.expect_ident()
        if self.accept("."):
            text += "." + self.expect_ident()
        return text

    def parse_mode_decl(self, impl: ComponentImplementation) -> None:
        name = self.expect_ident()
        self.expect(":")
        if self.accept("initial"):
            self.expect("mode")
            self.expect(";")
            impl.add_mode(Mode(name, initial=True))
            return
        if self.accept("mode"):
            self.expect(";")
            impl.add_mode(Mode(name, initial=False))
            return
        # mode transition:  name: source -[trigger]-> target;
        source = self.expect_ident()
        self.expect("-[")
        trigger = self.parse_endpoint()
        self.expect("]->")
        target = self.expect_ident()
        self.expect(";")
        impl.mode_transitions.append(ModeTransition(source, trigger, target))

    def parse_optional_in_modes(self) -> Tuple[str, ...]:
        if not self.at("in"):
            return ()
        if self.peek(1).lower != "modes":
            return ()
        self.advance()
        self.advance()
        self.expect("(")
        names = [self.expect_ident()]
        while self.accept(","):
            names.append(self.expect_ident())
        self.expect(")")
        return tuple(names)

    def parse_optional_property_block(self, holder: PropertyHolder) -> None:
        if self.accept("{"):
            while not self.at("}"):
                self.parse_property_assoc(holder)
            self.expect("}")

    def parse_property_assoc(self, holder: PropertyHolder) -> None:
        name = self.expect_ident()
        while self.accept("::"):
            name += "::" + self.expect_ident()
        self.expect("=>")
        value = self.parse_property_value(name)
        applies_to: Tuple[str, ...] = ()
        if self.accept("applies"):
            self.expect("to")
            parts = [self.expect_ident()]
            while self.accept("."):
                parts.append(self.expect_ident())
            applies_to = tuple(parts)
        self.expect(";")
        holder.add_property(name, value, applies_to)

    def parse_property_value(self, prop_name: str):
        token = self.peek()
        if token.kind == "int":
            return self.parse_numeric_value()
        if token.kind == "string":
            self.advance()
            return token.text[1:-1]
        if self.accept("("):
            values = [self.parse_property_value(prop_name)]
            while self.accept(","):
                values.append(self.parse_property_value(prop_name))
            self.expect(")")
            return tuple(values)
        if token.lower == "reference":
            self.advance()
            self.expect("(")
            parts = [self.expect_ident()]
            while self.accept("."):
                parts.append(self.expect_ident())
            self.expect(")")
            return ReferenceValue(parts)
        if token.kind == "ident":
            self.advance()
            return _typed_enum(prop_name, token.text)
        raise self.error(
            f"expected a property value, found {token.text or '<eof>'!r}"
        )

    def parse_numeric_value(self):
        first = int(self.advance().text)
        unit = None
        if self.peek().kind == "ident" and self.peek().lower in _TIME_UNITS:
            unit = self.advance().lower
        if self.accept(".."):
            low = TimeValue(first, unit) if unit else None
            second = int(self.advance().text)
            second_unit = None
            if (
                self.peek().kind == "ident"
                and self.peek().lower in _TIME_UNITS
            ):
                second_unit = self.advance().lower
            if unit is None and second_unit is None:
                return (first, second)  # integer range
            if unit is None:
                low = TimeValue(first, second_unit)
            high = TimeValue(second, second_unit or unit)
            return TimeRange(low, high)
        if unit is not None:
            return TimeValue(first, unit)
        return first


def _typed_enum(prop_name: str, text: str):
    canonical = _canonical_name(prop_name)
    if canonical == DISPATCH_PROTOCOL:
        return DispatchProtocol.parse(text)
    if canonical == SCHEDULING_PROTOCOL:
        return SchedulingProtocol.parse(text)
    if canonical == OVERFLOW_HANDLING_PROTOCOL:
        return OverflowHandlingProtocol.parse(text)
    if text.lower() == "true":
        return True
    if text.lower() == "false":
        return False
    return text


def _merge_arrows(tokens: List[_Token]) -> List[_Token]:
    """Combine '=' '>' into '=>' (regex keeps them separate)."""
    merged: List[_Token] = []
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if (
            tok.text == "="
            and i + 1 < len(tokens)
            and tokens[i + 1].text == ">"
            and tokens[i + 1].column == tok.column + 1
            and tokens[i + 1].line == tok.line
        ):
            merged.append(_Token("op", "=>", tok.line, tok.column))
            i += 2
            continue
        merged.append(tok)
        i += 1
    return merged


def parse_model(text: str) -> DeclarativeModel:
    """Parse textual AADL into a :class:`DeclarativeModel`."""
    from repro.obs.tracer import current_tracer

    with current_tracer().span("aadl.parse", chars=len(text)) as span:
        parser = _Parser(text)
        model = parser.parse_model()
        span.set(
            types=len(model.types()),
            implementations=len(model.implementations()),
        )
    return model
