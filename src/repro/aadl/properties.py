"""AADL property values and the standard property names used by the paper.

AADL properties describe timing, dispatching and binding characteristics of
components.  We model the value kinds the translation needs: integers,
time values with units, time ranges, enumerations, references to model
elements, strings and lists.

Time values keep their declared unit and convert exactly to picoseconds
internally, so quantization (``repro.translate.quantum``) can reason about
divisibility without floating-point error.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import AadlPropertyError

# Exact factors to picoseconds.
_UNIT_PS = {
    "ps": 1,
    "ns": 10**3,
    "us": 10**6,
    "ms": 10**9,
    "sec": 10**12,
    "min": 60 * 10**12,
    "hr": 3600 * 10**12,
}


class TimeValue:
    """A duration with an AADL time unit (exact integer arithmetic)."""

    __slots__ = ("value", "unit")

    def __init__(self, value: int, unit: str = "ms") -> None:
        if unit not in _UNIT_PS:
            raise AadlPropertyError(
                f"unknown time unit {unit!r}; expected one of "
                + ", ".join(_UNIT_PS)
            )
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise AadlPropertyError(
                f"time value must be a non-negative int, got {value!r}"
            )
        self.value = value
        self.unit = unit

    @property
    def picoseconds(self) -> int:
        return self.value * _UNIT_PS[self.unit]

    def to_ms(self) -> float:
        return self.picoseconds / _UNIT_PS["ms"]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimeValue)
            and self.picoseconds == other.picoseconds
        )

    def __lt__(self, other: "TimeValue") -> bool:
        return self.picoseconds < other.picoseconds

    def __le__(self, other: "TimeValue") -> bool:
        return self.picoseconds <= other.picoseconds

    def __hash__(self) -> int:
        return hash(self.picoseconds)

    def __repr__(self) -> str:
        return f"TimeValue({self.value}, {self.unit!r})"

    def __str__(self) -> str:
        return f"{self.value} {self.unit}"


def ms(value: int) -> TimeValue:
    """Millisecond literal."""
    return TimeValue(value, "ms")


def us(value: int) -> TimeValue:
    """Microsecond literal."""
    return TimeValue(value, "us")


class TimeRange:
    """A ``low .. high`` range of time values (e.g. execution times)."""

    __slots__ = ("low", "high")

    def __init__(self, low: TimeValue, high: TimeValue) -> None:
        if low.picoseconds > high.picoseconds:
            raise AadlPropertyError(
                f"empty time range {low} .. {high}"
            )
        self.low = low
        self.high = high

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimeRange)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:
        return f"TimeRange({self.low!r}, {self.high!r})"

    def __str__(self) -> str:
        return f"{self.low} .. {self.high}"


class DispatchProtocol(enum.Enum):
    """Thread dispatch protocols (paper S2: periodic, aperiodic, sporadic,
    background)."""

    PERIODIC = "Periodic"
    APERIODIC = "Aperiodic"
    SPORADIC = "Sporadic"
    BACKGROUND = "Background"

    @classmethod
    def parse(cls, text: str) -> "DispatchProtocol":
        for member in cls:
            if member.value.lower() == text.lower():
                return member
        raise AadlPropertyError(f"unknown Dispatch_Protocol {text!r}")


class SchedulingProtocol(enum.Enum):
    """Processor scheduling protocols supported by the priority encodings
    of paper S5."""

    RATE_MONOTONIC = "RMS"
    DEADLINE_MONOTONIC = "DMS"
    EARLIEST_DEADLINE_FIRST = "EDF"
    LEAST_LAXITY_FIRST = "LLF"
    HIGHEST_PRIORITY_FIRST = "HPF"

    @classmethod
    def parse(cls, text: str) -> "SchedulingProtocol":
        aliases = {
            "rms": cls.RATE_MONOTONIC,
            "rate_monotonic": cls.RATE_MONOTONIC,
            "rate_monotonic_protocol": cls.RATE_MONOTONIC,
            "dms": cls.DEADLINE_MONOTONIC,
            "deadline_monotonic": cls.DEADLINE_MONOTONIC,
            "deadline_monotonic_protocol": cls.DEADLINE_MONOTONIC,
            "edf": cls.EARLIEST_DEADLINE_FIRST,
            "earliest_deadline_first": cls.EARLIEST_DEADLINE_FIRST,
            "llf": cls.LEAST_LAXITY_FIRST,
            "least_laxity_first": cls.LEAST_LAXITY_FIRST,
            "hpf": cls.HIGHEST_PRIORITY_FIRST,
            "highest_priority_first": cls.HIGHEST_PRIORITY_FIRST,
            "fixed_priority": cls.HIGHEST_PRIORITY_FIRST,
        }
        try:
            return aliases[text.lower()]
        except KeyError:
            raise AadlPropertyError(
                f"unknown Scheduling_Protocol {text!r}"
            ) from None

    @property
    def is_fixed_priority(self) -> bool:
        """True when the protocol assigns one static priority per thread."""
        return self in (
            SchedulingProtocol.RATE_MONOTONIC,
            SchedulingProtocol.DEADLINE_MONOTONIC,
            SchedulingProtocol.HIGHEST_PRIORITY_FIRST,
        )


class OverflowHandlingProtocol(enum.Enum):
    """Event-port queue overflow behaviour (paper S4.4)."""

    DROP_NEWEST = "DropNewest"
    DROP_OLDEST = "DropOldest"
    ERROR = "Error"

    @classmethod
    def parse(cls, text: str) -> "OverflowHandlingProtocol":
        for member in cls:
            if member.value.lower() == text.lower():
                return member
        raise AadlPropertyError(
            f"unknown Overflow_Handling_Protocol {text!r}"
        )

    @property
    def drops(self) -> bool:
        """True when overflowing events are discarded silently.

        With the counter abstraction of S4.4 (event attributes are not
        modeled), DropNewest and DropOldest are indistinguishable.
        """
        return self is not OverflowHandlingProtocol.ERROR


class ReferenceValue:
    """A ``reference(a.b.c)`` property value naming a model element."""

    __slots__ = ("path",)

    def __init__(self, path: Sequence[str]) -> None:
        path = tuple(path)
        if not path or not all(isinstance(p, str) and p for p in path):
            raise AadlPropertyError(f"invalid reference path {path!r}")
        self.path = path

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReferenceValue) and self.path == other.path

    def __hash__(self) -> int:
        return hash(self.path)

    def __repr__(self) -> str:
        return f"ReferenceValue({self.path!r})"

    def __str__(self) -> str:
        return "reference(" + ".".join(self.path) + ")"


PropertyValue = Union[
    int,
    str,
    bool,
    TimeValue,
    TimeRange,
    DispatchProtocol,
    SchedulingProtocol,
    OverflowHandlingProtocol,
    ReferenceValue,
    Tuple["PropertyValue", ...],
]


class PropertyAssociation:
    """``Name => value [applies to subpath]``.

    ``applies_to`` is a dotted path (tuple of names) relative to the
    element holding the association; an empty tuple means the association
    applies to the holder itself.
    """

    __slots__ = ("name", "value", "applies_to")

    def __init__(
        self,
        name: str,
        value: PropertyValue,
        applies_to: Sequence[str] = (),
    ) -> None:
        if not isinstance(name, str) or not name:
            raise AadlPropertyError(f"invalid property name {name!r}")
        self.name = _canonical_name(name)
        self.value = value
        self.applies_to = tuple(applies_to)

    def __repr__(self) -> str:
        applies = f", applies_to={self.applies_to!r}" if self.applies_to else ""
        return f"PropertyAssociation({self.name!r}, {self.value!r}{applies})"


def _canonical_name(name: str) -> str:
    """Property names are case-insensitive; the property-set prefix
    (``SEI::Priority``) is preserved but normalized."""
    return "::".join(part.lower() for part in name.split("::"))


# Canonical names of the properties used by the translation (paper S4.1).
DISPATCH_PROTOCOL = "dispatch_protocol"
DISPATCH_OFFSET = "dispatch_offset"
PERIOD = "period"
COMPUTE_EXECUTION_TIME = "compute_execution_time"
#: Per-replenishment execution budget of a virtual processor (the
#: ARINC-653 partition server: ``Execution_Time`` out of ``Period``).
EXECUTION_TIME = "execution_time"
COMPUTE_DEADLINE = "compute_deadline"
DEADLINE = "deadline"
PRIORITY = "priority"
SCHEDULING_PROTOCOL = "scheduling_protocol"
QUEUE_SIZE = "queue_size"
OVERFLOW_HANDLING_PROTOCOL = "overflow_handling_protocol"
URGENCY = "urgency"
ACTUAL_PROCESSOR_BINDING = "actual_processor_binding"
ACTUAL_CONNECTION_BINDING = "actual_connection_binding"
LATENCY = "latency"


class PropertyHolder:
    """Mixin: an ordered list of property associations with lookup.

    Lookup returns the *last* matching association (later associations
    override earlier ones, mirroring AADL's declaration-order overriding
    within one holder)."""

    def __init__(self) -> None:
        self.properties: List[PropertyAssociation] = []

    def add_property(
        self,
        name: str,
        value: PropertyValue,
        applies_to: Sequence[str] = (),
    ) -> None:
        self.properties.append(PropertyAssociation(name, value, applies_to))

    def own_property(
        self, name: str, default: Optional[PropertyValue] = None
    ) -> Optional[PropertyValue]:
        """Value of a property declared directly on this holder (no
        ``applies to`` clause)."""
        canonical = _canonical_name(name)
        result = default
        for assoc in self.properties:
            if assoc.name == canonical and not assoc.applies_to:
                result = assoc.value
        return result

    def contained_properties(
        self, name: str
    ) -> List[PropertyAssociation]:
        """Associations for ``name`` with a non-empty ``applies to`` path."""
        canonical = _canonical_name(name)
        return [
            assoc
            for assoc in self.properties
            if assoc.name == canonical and assoc.applies_to
        ]
