"""Syntactic connections between features (paper S2, "Connections").

A syntactic connection links two feature references inside one component
implementation.  Each endpoint is a :class:`ConnectionRef`:

* ``("port",)`` -- a feature of the enclosing component itself;
* ``("sub", "port")`` -- a feature of a direct subcomponent.

Semantic connections -- ultimate source to ultimate destination through
the hierarchy -- are resolved during instantiation
(:mod:`repro.aadl.instance`).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

from repro.errors import AadlError
from repro.aadl.properties import PropertyHolder


class ConnectionRef:
    """A reference to a feature, relative to the enclosing implementation."""

    __slots__ = ("subcomponent", "feature")

    def __init__(self, feature: str, subcomponent: Optional[str] = None) -> None:
        if not isinstance(feature, str) or not feature:
            raise AadlError(f"invalid feature reference {feature!r}")
        if subcomponent is not None and (
            not isinstance(subcomponent, str) or not subcomponent
        ):
            raise AadlError(f"invalid subcomponent reference {subcomponent!r}")
        self.subcomponent = subcomponent
        self.feature = feature

    @classmethod
    def parse(cls, text: str) -> "ConnectionRef":
        """Parse ``sub.port`` or ``port``."""
        parts = text.split(".")
        if len(parts) == 1:
            return cls(parts[0])
        if len(parts) == 2:
            return cls(parts[1], parts[0])
        raise AadlError(f"connection endpoint too deep: {text!r}")

    @property
    def is_self(self) -> bool:
        """True when the endpoint is a feature of the enclosing component."""
        return self.subcomponent is None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConnectionRef)
            and self.subcomponent == other.subcomponent
            and self.feature == other.feature
        )

    def __hash__(self) -> int:
        return hash((self.subcomponent, self.feature))

    def __repr__(self) -> str:
        return f"ConnectionRef({str(self)!r})"

    def __str__(self) -> str:
        if self.subcomponent is None:
            return self.feature
        return f"{self.subcomponent}.{self.feature}"


class ConnectionKind(enum.Enum):
    PORT = "port"
    ACCESS = "access"


class Connection(PropertyHolder):
    """A named syntactic connection inside one implementation."""

    def __init__(
        self,
        name: str,
        source: ConnectionRef,
        destination: ConnectionRef,
        kind: ConnectionKind = ConnectionKind.PORT,
        in_modes: Sequence[str] = (),
    ) -> None:
        super().__init__()
        if not isinstance(name, str) or not name:
            raise AadlError(f"invalid connection name {name!r}")
        self.name = name
        self.source = source
        self.destination = destination
        self.kind = kind
        self.in_modes = tuple(in_modes)

    def __repr__(self) -> str:
        return (
            f"Connection({self.name!r}, {self.source} -> {self.destination})"
        )
