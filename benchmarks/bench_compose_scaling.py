"""T-COMPOSE: monolithic product vs compositional sum of state spaces.

Grows a decomposable multiprocessor system one island at a time and
measures the explored state count both ways:

* monolithic -- one exploration of the full composition; its state
  space multiplies with every added (independent) processor;
* compositional -- one exploration per island; the total is the *sum*
  of island state spaces, so it grows linearly.

The acceptance claim of the compose subsystem is pinned here: on a
decomposable model the verdicts agree and the compositional total is
strictly below the monolithic count.  The gallery's 2-processor
``dual_island`` model is the smallest instance of the claim; the sweep
shows the gap widening with island count.
"""

import pytest

from repro.aadl.gallery import dual_island
from repro.analysis import analyze_model
from repro.compose import analyze_compositionally
from repro.workloads.generators import multiprocessor_system

from conftest import print_table

SEED = 5506  # SAE AS5506
MAX_STATES = 400_000
ISLAND_COUNTS = (1, 2, 3)


def _system(n_islands: int):
    import numpy as np

    return multiprocessor_system(
        n_islands,
        2,
        utilization_per_processor=0.5,
        shared_bus=False,
        periods=(4, 8),
        rng=np.random.default_rng(SEED),
    )


def test_gallery_dual_island_sum_beats_product(benchmark):
    """The ISSUE acceptance criterion on the 2-processor gallery model:
    same verdict, strictly fewer total states."""
    monolithic = analyze_model(dual_island(), max_states=MAX_STATES)

    def composed_run():
        return analyze_compositionally(
            dual_island(), workers=1, max_states=MAX_STATES
        )

    composed = benchmark.pedantic(composed_run, rounds=1, iterations=1)

    assert composed.compositional
    assert composed.verdict is monolithic.verdict
    assert composed.total_states < monolithic.num_states

    print_table(
        "dual_island (2 processors): monolithic vs compositional",
        ["run", "verdict", "states"],
        [
            ("monolithic", monolithic.verdict.value,
             monolithic.num_states),
            ("compositional (sum)", composed.verdict.value,
             composed.total_states),
        ]
        + [
            (f"  {o.island.label}", o.verdict.value, o.states)
            for o in composed.outcomes
        ],
    )


def test_island_count_sweep():
    """Monolithic growth is multiplicative in island count; the
    compositional sum stays linear."""
    rows = []
    gaps = []
    for n_islands in ISLAND_COUNTS:
        monolithic = analyze_model(_system(n_islands), max_states=MAX_STATES)
        composed = analyze_compositionally(
            _system(n_islands), workers=1, max_states=MAX_STATES
        )
        assert composed.compositional
        assert composed.verdict is monolithic.verdict
        # multiprocessor_system adds an unconnected sink processor, so
        # even n_islands=1 yields two islands and a real decomposition.
        assert len(composed.outcomes) == n_islands + 1
        assert composed.total_states < monolithic.num_states
        gaps.append(monolithic.num_states / max(composed.total_states, 1))
        rows.append(
            (
                n_islands + 1,
                monolithic.verdict.value,
                monolithic.num_states,
                composed.total_states,
                f"{gaps[-1]:.1f}x",
            )
        )
    # The multiplicative/linear gap must widen as islands are added.
    assert gaps == sorted(gaps)
    print_table(
        "island sweep: monolithic product vs compositional sum",
        ["islands", "verdict", "monolithic states", "island sum", "gap"],
        rows,
    )
