"""T-OFFSET: phase offsets -- exhaustive analysis beyond the critical
instant (extension; motivated by the paper's S1 claim of handling systems
"beyond the scope of more traditional schedulability analysis").

Two C=2, T=8, D=2 threads on one RM processor.  Released synchronously
the lower-priority one always misses; with a phase offset >= C the set is
schedulable.  Classical RTA, built on the synchronous critical instant,
rejects every variant -- the exhaustive exploration (and the offset-aware
simulation) track the true crossover at offset = 2.
"""

import pytest

from repro.analysis import Verdict, analyze_model
from repro.sched import extract_task_set, rta_schedulable, simulate

from conftest import print_table


def _two_tight_threads(offset: int):
    from repro.aadl.builder import SystemBuilder
    from repro.aadl.properties import (
        DispatchProtocol,
        SchedulingProtocol,
        ms,
    )

    b = SystemBuilder("Off")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    b.thread(
        "a", dispatch=DispatchProtocol.PERIODIC, period=ms(8),
        compute_time=(ms(2), ms(2)), deadline=ms(2), processor=cpu,
    )
    b.thread(
        "b", dispatch=DispatchProtocol.PERIODIC, period=ms(8),
        compute_time=(ms(2), ms(2)), deadline=ms(2), processor=cpu,
        offset=ms(offset) if offset else None,
    )
    return b.instantiate()


def test_offset_sweep(benchmark):
    two_tight_threads = _two_tight_threads

    def sweep():
        rows = []
        for offset in (0, 1, 2, 4, 6):
            inst = two_tight_threads(offset)
            acsr = analyze_model(inst).verdict
            tasks = extract_task_set(inst, inst.processors()[0])
            rta = rta_schedulable(tasks, ordering="rate")
            sim = simulate(tasks, policy="rate").schedulable
            rows.append((offset, acsr.value, rta, sim))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Crossover at offset == C == 2 in both exact analyses; RTA stays
    # pessimistic throughout.
    by_offset = {offset: row for offset, *row in rows}
    assert by_offset[0][0] == "unschedulable"
    assert by_offset[1][0] == "unschedulable"
    for offset in (2, 4, 6):
        assert by_offset[offset][0] == "schedulable"
    assert all(not row[1] for row in by_offset.values())  # RTA: always no
    for offset, (acsr, _, sim) in by_offset.items():
        assert (acsr == "schedulable") == sim
    print_table(
        "T-OFFSET two C=2/T=8/D=2 threads, RM, phase sweep",
        ["offset", "ACSR (exact)", "RTA (sync)", "simulation"],
        rows,
    )
