"""T-MODAL: per-mode fan-out through the batch pool vs the serial loop.

The modal subsystem's scaling claim: the steady half of a
transition-aware analysis treats every reachable mode as one batch job
with a mode-keyed cache entry, so an 8-mode model re-analyzed after a
model-neutral change (new seeds elsewhere in a campaign, a re-run CI
job) is served from the verdict cache across workers instead of
re-exploring every mode in sequence.  The acceptance bar: the
parallel-cached fan-out beats the serial in-process loop by >= 3x at
8 modes.
"""

import time

import numpy as np

from repro.analysis import Verdict, analyze_all_modes
from repro.workloads import faulty_modal_system

from conftest import print_table

N_MODES = 8


def eight_mode_model():
    """A deterministic 8-mode fault/recovery draw; moderate per-mode
    utilization keeps each steady exploration non-trivial."""
    return faulty_modal_system(
        n_modes=N_MODES,
        threads_per_mode=5,
        utilization=(0.4, 0.6),
        periods=(16, 32, 64),
        rng=np.random.default_rng(42),
    )


def test_parallel_cached_fanout_beats_serial_loop(benchmark, tmp_path):
    model = eight_mode_model()
    cache = str(tmp_path / "cache")

    started = time.perf_counter()
    serial = analyze_all_modes(model, "FaultyModal.impl")
    serial_elapsed = time.perf_counter() - started
    assert len(serial.per_mode) == N_MODES

    # Cold pooled run populates the mode-keyed verdict cache.
    cold = analyze_all_modes(
        model, "FaultyModal.impl", workers=4, cache=cache
    )
    assert not any(o.cached for o in cold.per_mode.values())

    def warm_run():
        return analyze_all_modes(
            model, "FaultyModal.impl", workers=4, cache=cache
        )

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    started = time.perf_counter()
    warm = warm_run()
    warm_elapsed = time.perf_counter() - started

    assert all(o.cached for o in warm.per_mode.values())
    assert warm.verdict is serial.verdict
    assert {
        mode: o.verdict for mode, o in warm.per_mode.items()
    } == {mode: o.verdict for mode, o in serial.per_mode.items()}
    # The acceptance bar: >= 3x over the serial loop at 8 modes.
    speedup = serial_elapsed / max(warm_elapsed, 1e-9)
    assert speedup >= 3.0, (
        f"parallel-cached fan-out only {speedup:.2f}x over the serial "
        f"loop ({serial_elapsed:.3f}s vs {warm_elapsed:.3f}s)"
    )

    print_table(
        f"{N_MODES}-mode steady fan-out: serial loop vs pooled + "
        f"warm verdict cache",
        ["run", "verdict", "seconds", "speedup"],
        [
            (
                "serial loop",
                serial.verdict.value,
                f"{serial_elapsed:.4f}",
                "1.0x",
            ),
            (
                "pooled, warm cache",
                warm.verdict.value,
                f"{warm_elapsed:.4f}",
                f"{speedup:.1f}x",
            ),
        ],
    )


def test_cold_pool_matches_serial_verdicts(tmp_path):
    """Determinism across execution shapes: --jobs N with a cold cache
    must reproduce the serial per-mode verdicts exactly."""
    model = eight_mode_model()
    serial = analyze_all_modes(model, "FaultyModal.impl")
    pooled = analyze_all_modes(
        model, "FaultyModal.impl",
        workers=4, cache=str(tmp_path / "cold"),
    )
    assert list(pooled.per_mode) == list(serial.per_mode)
    assert {
        mode: o.verdict for mode, o in pooled.per_mode.items()
    } == {mode: o.verdict for mode, o in serial.per_mode.items()}
    assert pooled.verdict in (
        Verdict.SCHEDULABLE, Verdict.UNSCHEDULABLE, Verdict.UNKNOWN
    )
