"""T-SHARE: shared data access and the priority-ceiling encoding.

The paper omits access connections from its presentation (S4) but notes
that the priority-inheritance family of protocols has ACSR encodings
(S5).  Regenerated shapes:

* whole-quantum mutual exclusion (S4.1): two sharers on different
  processors never compute in the same quantum;
* classic unbounded priority inversion reproduced under plain HPF;
* the immediate-ceiling encoding restores schedulability;
* the serialization cost is visible in the verdicts of a utilization
  sweep.
"""

import pytest

from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import priority_inversion_trio
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis import Verdict, analyze_model
from repro.translate import TranslationOptions

from conftest import print_table


def test_inversion_vs_ceiling(benchmark):
    instance = priority_inversion_trio()

    def run():
        plain = analyze_model(instance)
        ceiling = analyze_model(
            instance,
            options=TranslationOptions(use_priority_ceiling=True),
        )
        return plain, ceiling

    plain, ceiling = benchmark.pedantic(run, rounds=1, iterations=1)
    assert plain.verdict is Verdict.UNSCHEDULABLE
    assert plain.scenario.misses == ["Inversion.high"]
    assert ceiling.verdict is Verdict.SCHEDULABLE
    print_table(
        "T-SHARE priority inversion (HPF, shared data)",
        ["protocol", "verdict", "states"],
        [
            ["none (plain HPF)", plain.verdict.value, plain.num_states],
            ["immediate ceiling", ceiling.verdict.value, ceiling.num_states],
        ],
    )


def _cross_cpu_sharers(wcet: int):
    b = SystemBuilder("Share")
    cpu1 = b.processor("cpu1")
    cpu2 = b.processor("cpu2")
    for index, cpu in enumerate((cpu1, cpu2)):
        t = b.thread(
            f"t{index}",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(8),
            compute_time=(ms(wcet), ms(wcet)),
            deadline=ms(8),
            processor=cpu,
        )
        t.requires_data_access("d", classifier="Shared")
    return b.instantiate()


def test_serialization_cost_sweep(benchmark):
    """Two sharers on separate cpus: feasible iff the *sum* of their
    demands fits the period -- the shared resource makes two processors
    behave like one."""

    def sweep():
        return [
            (wcet, analyze_model(_cross_cpu_sharers(wcet)).verdict)
            for wcet in (2, 4, 5)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    verdicts = {wcet: verdict for wcet, verdict in rows}
    assert verdicts[2] is Verdict.SCHEDULABLE   # 2+2 <= 8
    assert verdicts[4] is Verdict.SCHEDULABLE   # 4+4 <= 8, exactly
    assert verdicts[5] is Verdict.UNSCHEDULABLE  # 5+5 > 8
    print_table(
        "T-SHARE cross-cpu serialization (T=D=8 each)",
        ["wcet each", "verdict"],
        [[w, v.value] for w, v in rows],
    )
