"""FIG5: the Compute process with dynamic parameters (e, s).

Regenerates: state-space sizes of a single thread as functions of the
execution-time budget cmax and the deadline (the ranges of the dynamic
parameters).  Checked shape: reachable states grow linearly in both --
the parameters are the only source of state, exactly as the paper's
finite-state argument requires; execution-time *uncertainty*
(cmin < cmax) multiplies behaviours but stays finite.
"""

import pytest

from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis import Verdict, analyze_model

from conftest import print_table


def one_thread(cmin, cmax, deadline, period):
    b = SystemBuilder("Fig5")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    b.thread(
        "t",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(period),
        compute_time=(ms(cmin), ms(cmax)),
        deadline=ms(deadline),
        processor=cpu,
    )
    return b.instantiate()


def states_of(instance):
    # Pin the quantum: the default GCD quantum would rescale the sweep
    # parameters and hide the growth being measured.
    result = analyze_model(
        instance, quantum=ms(1), stop_at_first_deadlock=False
    )
    assert result.verdict is Verdict.SCHEDULABLE
    return result.num_states


def test_states_grow_linearly_with_period(benchmark):
    """The dynamic parameters (e, s, and the dispatcher counter k) range
    over the period: reachable states grow linearly with it."""

    def sweep():
        return [
            (period, states_of(one_thread(2, 2, period, period)))
            for period in (4, 8, 12, 16)
        ]

    series = benchmark(sweep)
    sizes = [states for _, states in series]
    assert sizes == sorted(sizes)
    # Linear shape: each +4 of period adds a near-constant increment.
    increments = [b - a for a, b in zip(sizes, sizes[1:])]
    assert max(increments) <= 2 * max(1, min(increments))
    print_table(
        "FIG5 states vs period (cmin=cmax=2, D=T)",
        ["period", "states"],
        series,
    )


def test_states_grow_with_execution_uncertainty(benchmark):
    """Widening [cmin, cmax] opens Figure 5's early-completion window:
    each extra admissible duration adds behaviours."""

    def sweep():
        return [
            (cmax, states_of(one_thread(1, cmax, 12, 12)))
            for cmax in (1, 2, 4, 6)
        ]

    series = benchmark(sweep)
    sizes = [states for _, states in series]
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]
    print_table(
        "FIG5 states vs execution-time uncertainty (cmin=1, D=T=12)",
        ["cmax", "states"],
        series,
    )


def test_execution_time_uncertainty_adds_states(benchmark):
    """cmin < cmax: the complete-exit window opens at cmin, producing
    extra behaviours (Figure 5's nondeterministic exit)."""

    def measure():
        tight = states_of(one_thread(4, 4, 8, 8))
        loose = states_of(one_thread(1, 4, 8, 8))
        return tight, loose

    tight, loose = benchmark(measure)
    assert loose > tight
    print_table(
        "FIG5 deterministic vs uncertain execution time (D=T=8, cmax=4)",
        ["cmin=cmax=4", "cmin=1, cmax=4"],
        [[tight, loose]],
    )


def test_preemption_branch_reachable(benchmark):
    """With a higher-priority interferer, the Compute process visits its
    Preempted branch: states where s advances but e does not."""
    b = SystemBuilder("Fig5P")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    b.thread(
        "high",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(1), ms(1)),
        deadline=ms(4),
        processor=cpu,
    )
    b.thread(
        "low",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(4), ms(4)),
        deadline=ms(8),
        processor=cpu,
    )
    instance = b.instantiate()

    def run():
        return analyze_model(instance, stop_at_first_deadlock=False)

    result = benchmark(run)
    assert result.verdict is Verdict.SCHEDULABLE
    # Dig out a Compute state with s > e (preempted at least once).
    from repro.analysis.raising import _components
    from repro.versa import Explorer

    exploration = Explorer(
        result.translation.system, store_transitions=True
    ).run()
    preempted = False
    for state in exploration.states():
        for ref in _components(state):
            entry = result.translation.names.lookup(ref.name)
            if entry and entry[0] == "compute" and len(ref.args) == 2:
                e, s = ref.args
                if s > e:
                    preempted = True
    assert preempted
