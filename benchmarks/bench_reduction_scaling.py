"""T-REDUCE: state-space reduction vs replica count.

Grows a symmetric system one replica processor at a time and measures
the explored state count three ways: unreduced, symmetry-only, and
symmetry + partial-order.  Unreduced growth is multiplicative in the
replica count; the symmetry quotient collapses the n! interleavings of
identical replicas to one orbit representative each, and the ample
filter removes the remaining commuting event bursts.

The acceptance claim of the reduction subsystem is pinned here: on the
4-replica symmetric model the combined passes visit at least 5x fewer
states than the unreduced exploration, at the same verdict.  The
offset-jittered control row shows symmetry correctly declining to fire
when the replicas are distinguishable.
"""

import numpy as np

from repro.analysis import analyze_model

from conftest import print_table

from repro.workloads import replicated_system

SEED = 5506  # SAE AS5506
MAX_STATES = 400_000
REPLICA_COUNTS = (2, 3, 4)
TARGET_FACTOR = 5.0


def _system(n_replicas: int, jitter: bool = False):
    return replicated_system(
        n_replicas,
        2,
        utilization_per_replica=0.5,
        periods=(4, 8),
        offset_jitter=jitter,
        rng=np.random.default_rng(SEED),
    )


def test_replica_sweep_reduction_factor(benchmark):
    """The ISSUE acceptance criterion: >= 5x fewer states on the
    4-replica symmetric model, same verdict at every point."""
    rows = []
    factors = []
    for n_replicas in REPLICA_COUNTS:
        unreduced = analyze_model(_system(n_replicas), max_states=MAX_STATES)
        sym = analyze_model(
            _system(n_replicas), max_states=MAX_STATES, reduction="sym"
        )
        both = analyze_model(
            _system(n_replicas),
            max_states=MAX_STATES,
            reduction="sym,por",
        )
        assert sym.verdict is unreduced.verdict
        assert both.verdict is unreduced.verdict
        assert both.num_states <= sym.num_states <= unreduced.num_states
        factors.append(unreduced.num_states / max(both.num_states, 1))
        rows.append(
            (
                n_replicas,
                unreduced.verdict.value,
                unreduced.num_states,
                sym.num_states,
                both.num_states,
                f"{factors[-1]:.1f}x",
            )
        )

    # The quotient gap must widen with every added replica...
    assert factors == sorted(factors)
    # ...and reach the pinned factor at four replicas.
    assert factors[-1] >= TARGET_FACTOR, (
        f"4-replica reduction factor {factors[-1]:.1f}x "
        f"< required {TARGET_FACTOR}x"
    )

    def reduced_run():
        return analyze_model(
            _system(REPLICA_COUNTS[-1]),
            max_states=MAX_STATES,
            reduction="sym,por",
        )

    benchmark.pedantic(reduced_run, rounds=1, iterations=1)

    print_table(
        "replica sweep: unreduced vs sym vs sym+por states",
        ["replicas", "verdict", "unreduced", "sym", "sym+por", "factor"],
        rows,
    )


def test_jittered_control_defeats_symmetry():
    """Offset jitter makes replicas distinguishable: symmetry must not
    fire, and the verdict must still match the unreduced run."""
    unreduced = analyze_model(_system(3, jitter=True), max_states=MAX_STATES)
    reduced = analyze_model(
        _system(3, jitter=True), max_states=MAX_STATES, reduction="sym,por"
    )
    assert reduced.verdict is unreduced.verdict
    stats = reduced.exploration.stats
    assert stats.orbits_merged == 0
    print_table(
        "jittered control (3 replicas, distinct offsets)",
        ["run", "verdict", "states", "orbits merged"],
        [
            ("unreduced", unreduced.verdict.value,
             unreduced.num_states, "-"),
            ("sym,por", reduced.verdict.value,
             reduced.num_states, stats.orbits_merged),
        ],
    )
