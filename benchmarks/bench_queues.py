"""T-QUEUE: queue sizing and overflow protocols (S4.4).

Regenerates: a producer/consumer system where the producer outpaces the
consumer's minimum separation, swept over queue sizes under both
overflow protocols.  Checked shape: with Error overflow there is a
minimum queue size below which the model deadlocks (overflow reached)
-- and with arrival rate strictly above the service rate, no finite
queue suffices; the Drop protocols are schedulable at every size; state
count grows with queue size (the counter is a dynamic parameter).
"""

import pytest

from repro.aadl.gallery import sporadic_consumer
from repro.aadl.properties import OverflowHandlingProtocol
from repro.analysis import Verdict, analyze_model

from conftest import print_table


def verdict_for(queue_size, overflow, producer_period=4, min_separation=6):
    instance = sporadic_consumer(
        queue_size=queue_size,
        overflow=overflow,
        producer_period=producer_period,
        min_separation=min_separation,
    )
    return analyze_model(instance, max_states=500_000)


def test_queue_size_sweep_error_protocol(benchmark):
    def sweep():
        return [
            (
                size,
                verdict_for(size, OverflowHandlingProtocol.ERROR).verdict,
            )
            for size in (1, 2, 3, 4)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Producer period 4, min separation 6: arrival rate 1/4 > service
    # rate 1/6 -- the backlog grows without bound, so EVERY finite queue
    # eventually overflows under the Error protocol.
    for _, verdict in rows:
        assert verdict is Verdict.UNSCHEDULABLE
    print_table(
        "T-QUEUE Error overflow, overloaded arrivals (T_prod=4 < P_min=6)",
        ["queue size", "verdict"],
        [[s, v.value] for s, v in rows],
    )


def test_queue_size_sweep_drop_protocol(benchmark):
    def sweep():
        return [
            (
                size,
                verdict_for(
                    size, OverflowHandlingProtocol.DROP_NEWEST
                ).verdict,
            )
            for size in (1, 2, 3)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for _, verdict in rows:
        assert verdict is Verdict.SCHEDULABLE
    print_table(
        "T-QUEUE Drop overflow, overloaded arrivals",
        ["queue size", "verdict"],
        [[s, v.value] for s, v in rows],
    )


def test_error_queue_feasible_when_rates_match(benchmark):
    """Arrival rate == service rate: a queue of size 1 already suffices
    (crossover of the protocol comparison)."""

    def run():
        return verdict_for(
            1,
            OverflowHandlingProtocol.ERROR,
            producer_period=6,
            min_separation=6,
        ).verdict

    verdict = benchmark(run)
    assert verdict is Verdict.SCHEDULABLE


def test_states_grow_with_queue_size(benchmark):
    def sweep():
        return [
            (
                size,
                verdict_for(
                    size, OverflowHandlingProtocol.DROP_NEWEST
                ).num_states,
            )
            for size in (1, 2, 4, 8)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = [states for _, states in rows]
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]
    print_table(
        "T-QUEUE states vs queue size (Drop)",
        ["queue size", "states"],
        rows,
    )
