"""T-LAT: end-to-end latency observers (S5).

Regenerates: a bound sweep for the RefSpeed -> Cruise1 flow of the
cruise-control model.  Checked shape: verdicts are monotone in the bound
(once guaranteed, stays guaranteed) and a crossover exists inside the
sweep; at a violated bound the raised scenario ends with an unmatched
flow_start.
"""

import pytest

from repro.aadl.gallery import cruise_control
from repro.aadl.properties import ms
from repro.analysis import FlowSpec, Verdict, check_latency

from conftest import print_table

SOURCE = "CruiseControl.hci.refspeed"
DESTINATION = "CruiseControl.ccl.cruise1"
BOUNDS = (10, 20, 30, 40, 50, 60)


def test_latency_bound_sweep(benchmark):
    instance = cruise_control()

    def sweep():
        rows = []
        for bound in BOUNDS:
            result = check_latency(
                instance,
                [FlowSpec(SOURCE, DESTINATION, ms(bound))],
                max_states=500_000,
            )
            rows.append((bound, result.verdict))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    verdicts = [v is Verdict.SCHEDULABLE for _, v in rows]
    # Monotone with a crossover inside the sweep.
    assert not verdicts[0]
    assert verdicts[-1]
    first_pass = verdicts.index(True)
    assert all(verdicts[first_pass:])
    print_table(
        f"T-LAT {SOURCE} -> {DESTINATION}",
        ["bound (ms)", "verdict"],
        [[b, v.value] for b, v in rows],
    )


def test_violation_scenario_shape(benchmark):
    instance = cruise_control()

    def run():
        return check_latency(
            instance,
            [FlowSpec(SOURCE, DESTINATION, ms(10))],
            max_states=500_000,
        )

    result = benchmark(run)
    assert result.verdict is Verdict.UNSCHEDULABLE
    kinds = [e.kind for e in result.scenario.events]
    assert "flow_start" in kinds
    last_start = max(i for i, k in enumerate(kinds) if k == "flow_start")
    assert "flow_end" not in kinds[last_start + 1 :]


def test_multiple_flows_cost(benchmark):
    """Observers are cheap: adding a second flow grows the state space
    sublinearly (the observers mostly idle)."""
    instance = cruise_control()

    def run():
        one = check_latency(
            instance,
            [FlowSpec(SOURCE, DESTINATION, ms(60))],
            max_states=500_000,
        )
        two = check_latency(
            instance,
            [
                FlowSpec(SOURCE, DESTINATION, ms(60)),
                FlowSpec(
                    "CruiseControl.ccl.cruise1",
                    "CruiseControl.ccl.cruise2",
                    ms(110),
                ),
            ],
            max_states=500_000,
        )
        return one, two

    one, two = benchmark.pedantic(run, rounds=1, iterations=1)
    assert one.verdict is Verdict.SCHEDULABLE
    assert two.verdict is Verdict.SCHEDULABLE
    assert two.num_states < 4 * one.num_states
    print_table(
        "T-LAT observer cost",
        ["flows", "states"],
        [[1, one.num_states], [2, two.num_states]],
    )
