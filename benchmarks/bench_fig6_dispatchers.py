"""FIG6: the three dispatcher shapes (periodic, aperiodic, sporadic).

Regenerates the distinguishing behaviours of Figure 6:

* (a) the periodic dispatcher's initial state *cannot idle* -- it must
  send dispatch immediately;
* (b) the aperiodic dispatcher *can idle* awaiting a queue event;
* (c) the sporadic dispatcher enforces the minimum separation: with a
  saturating producer, dispatches are exactly P apart, so the consumer's
  observed throughput is 1/P regardless of the arrival rate.
"""

import pytest

from repro.acsr.events import EventLabel
from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import aperiodic_worker, sporadic_consumer
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis import Verdict, analyze_model
from repro.translate import translate
from repro.versa import Explorer

from conftest import print_table


def test_periodic_cannot_idle_at_dispatch(benchmark):
    b = SystemBuilder("Fig6a")
    cpu = b.processor("cpu")
    b.thread(
        "t",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(1), ms(1)),
        deadline=ms(4),
        processor=cpu,
    )
    translation = translate(b.instantiate())
    dispatcher = translation.threads["Fig6a.t"].dispatcher_name

    def initial_steps():
        from repro.acsr.terms import proc

        return translation.system.steps(proc(dispatcher))

    steps = benchmark(initial_steps)
    labels = [label for label, _ in steps]
    assert len(labels) == 1
    assert isinstance(labels[0], EventLabel)
    assert labels[0].name.startswith("dispatch$")
    print_table(
        "FIG6a initial dispatcher steps (no idle alternative)",
        ["labels"],
        [[", ".join(str(l) for l in labels)]],
    )


def test_aperiodic_can_idle(benchmark):
    instance = aperiodic_worker()
    translation = translate(instance)
    dispatcher = translation.threads[
        "AperiodicChain.worker"
    ].dispatcher_name

    def initial_steps():
        from repro.acsr.terms import proc

        return translation.system.steps(proc(dispatcher))

    steps = benchmark(initial_steps)
    kinds = {str(label) for label, _ in steps}
    assert "idle" in kinds
    assert any(k.startswith("(dq$") for k in kinds)
    print_table(
        "FIG6b initial dispatcher steps (idle allowed)",
        ["labels"],
        [[", ".join(sorted(kinds))]],
    )


def test_aperiodic_end_to_end(benchmark):
    result = benchmark(lambda: analyze_model(aperiodic_worker()))
    assert result.verdict is Verdict.SCHEDULABLE


def test_sporadic_separation_throttles(benchmark):
    """Fig 6c: producer at period 2, consumer min separation 6 -- the
    queue (Drop) absorbs the excess and the system is schedulable; the
    same system with an Error queue overflows."""
    from repro.aadl.properties import OverflowHandlingProtocol

    def run_both():
        drop = analyze_model(
            sporadic_consumer(
                producer_period=2,
                min_separation=6,
                queue_size=1,
                overflow=OverflowHandlingProtocol.DROP_NEWEST,
            )
        )
        error = analyze_model(
            sporadic_consumer(
                producer_period=2,
                min_separation=6,
                queue_size=1,
                overflow=OverflowHandlingProtocol.ERROR,
            )
        )
        return drop, error

    drop, error = benchmark(run_both)
    assert drop.verdict is Verdict.SCHEDULABLE
    assert error.verdict is Verdict.UNSCHEDULABLE
    assert error.scenario.overflows
    print_table(
        "FIG6c sporadic separation under a saturating producer",
        ["overflow protocol", "verdict"],
        [
            ["DropNewest", drop.verdict.value],
            ["Error", error.verdict.value],
        ],
    )


def test_sporadic_dispatch_spacing(benchmark):
    """Within the explored space, consecutive dispatches of the sporadic
    consumer are >= P quanta apart."""
    instance = sporadic_consumer(
        producer_period=2, min_separation=4, queue_size=1
    )
    translation = translate(instance)

    def explore():
        return Explorer(
            translation.system, store_transitions=True, max_states=200_000
        ).run()

    result = benchmark(explore)
    assert result.completed

    # From each post-dispatch state, count timed steps to the next
    # dispatch along every path: must be >= 4.
    import collections

    dispatch_via = next(
        name
        for name in translation.restricted_events
        if name.startswith("dispatch$SporadicChain_consumer")
    )
    for state in result.states():
        for label, succ in result.transitions_of(state):
            if not (
                isinstance(label, EventLabel) and label.via == dispatch_via
            ):
                continue
            queue = collections.deque([(succ, 0)])
            seen = {succ}
            while queue:
                current, depth = queue.popleft()
                for lab, nxt in result.transitions_of(current):
                    if (
                        isinstance(lab, EventLabel)
                        and lab.via == dispatch_via
                    ):
                        assert depth >= 4
                        continue
                    timed = 0 if isinstance(lab, EventLabel) else 1
                    if nxt not in seen and depth + timed < 4:
                        seen.add(nxt)
                        queue.append((nxt, depth + timed))
