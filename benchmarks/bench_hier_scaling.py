"""T-HIER: BDR interface checks vs island exploration.

The hierarchical analysis's acceptance claim: a partitioned system is
decided analytically -- zero states, microseconds per partition --
where the nearest exploration-based alternative (give every partition
its own dedicated processor and explore the islands) pays translation
plus state-space costs that grow with every partition added.

The dedicated-processor counterpart is a *relaxation* (full supply
instead of a budgeted server), so its verdict can only be more
permissive; the comparison here is about machinery cost, with the
workloads chosen so both models are schedulable and the verdicts
coincide.
"""

import time

import pytest

from repro.aadl.builder import SystemBuilder
from repro.analysis import Verdict
from repro.compose import analyze_compositionally
from repro.hier import analyze_hier

from conftest import print_table

#: (wcet ms, period ms) pairs per partition; demand 0.075, light
#: enough to pass the interface check even at an eighth of the supply.
PARTITION_TASKS = ((1, 40), (2, 80))
SERVER_PERIOD = 10


def partitioned_model(n_partitions: int):
    """One host carved into ``n_partitions`` equal partitions; budgets
    shrink with the partition count so the host stays feasible."""
    budget = max(1, SERVER_PERIOD // n_partitions)
    b = SystemBuilder("HierScale")
    cpu = b.processor("cpu")
    for p in range(n_partitions):
        part = b.virtual_processor(
            f"part{p}",
            period=SERVER_PERIOD,
            budget=budget,
            processor=cpu,
        )
        for index, (wcet, period) in enumerate(PARTITION_TASKS):
            b.thread(
                f"p{p}t{index}",
                dispatch="periodic",
                period=period,
                compute_time=wcet,
                deadline=period,
                processor=part,
            )
    return b.instantiate()


def dedicated_model(n_partitions: int):
    """The relaxed counterpart: each partition's threads on their own
    full processor -- the shape island exploration can handle."""
    b = SystemBuilder("DedicatedScale")
    for p in range(n_partitions):
        cpu = b.processor(f"cpu{p}")
        for index, (wcet, period) in enumerate(PARTITION_TASKS):
            b.thread(
                f"p{p}t{index}",
                dispatch="periodic",
                period=period,
                compute_time=wcet,
                deadline=period,
                processor=cpu,
            )
    return b.instantiate()


@pytest.mark.parametrize("n_partitions", [2, 4])
def test_interface_beats_island_exploration(benchmark, n_partitions):
    partitioned = partitioned_model(n_partitions)
    dedicated = dedicated_model(n_partitions)

    started = time.perf_counter()
    island = analyze_compositionally(dedicated, workers=1)
    island_elapsed = time.perf_counter() - started

    result = benchmark.pedantic(
        lambda: analyze_hier(partitioned), rounds=5, iterations=1
    )
    hier_elapsed = result.elapsed

    assert result.verdict is Verdict.SCHEDULABLE
    assert island.verdict is Verdict.SCHEDULABLE
    assert result.num_states == 0
    stats = result.exploration.stats
    assert stats.hier_interface_hits == n_partitions
    assert hier_elapsed < island_elapsed

    print_table(
        f"{n_partitions} partition(s): interface check vs island "
        f"exploration of the dedicated-processor relaxation",
        ["run", "verdict", "states", "seconds"],
        [
            (
                "hier interface",
                result.verdict.value,
                result.num_states,
                f"{hier_elapsed:.4f}",
            ),
            (
                "island exploration",
                island.verdict.value,
                island.total_states,
                f"{island_elapsed:.4f}",
            ),
        ],
    )


def test_interface_cost_scales_linearly(benchmark):
    """Doubling the partition count roughly doubles (not squares) the
    analytic cost: partitions are checked independently."""
    small, large = partitioned_model(2), partitioned_model(8)

    def run():
        t0 = time.perf_counter()
        analyze_hier(small)
        t_small = time.perf_counter() - t0
        t0 = time.perf_counter()
        analyze_hier(large)
        return t_small, time.perf_counter() - t0

    t_small, t_large = benchmark.pedantic(run, rounds=3, iterations=1)
    # Generous bound: 4x the partitions may cost at most ~16x wall
    # clock (noise floor included), nowhere near state-space blowup.
    assert t_large < max(t_small, 1e-3) * 64

    print_table(
        "interface-check scaling",
        ["partitions", "seconds"],
        [(2, f"{t_small:.5f}"), (8, f"{t_large:.5f}")],
    )
