"""T-SCHED: the S5 theorem, cross-validated.

'The resulting ACSR model is deadlock-free if and only if every task
meets its deadline.'  On the classical regime this means the exhaustive
analysis must agree exactly with response-time analysis (fixed priority)
and with the processor-demand criterion (EDF).  This bench draws random
UUniFast task sets across a utilization sweep and measures the agreement
rate (must be 100%) plus the cost gap between exhaustive exploration and
the closed-form tests.
"""

import time

import numpy as np
import pytest

from repro.analysis import Verdict, analyze_model
from repro.aadl.properties import SchedulingProtocol
from repro.sched import edf_schedulable, rta_schedulable
from repro.workloads import integer_task_set, task_set_to_system

from conftest import print_table

SEED = 20060429  # the paper's publication date
N_SETS = 12
UTILIZATIONS = (0.5, 0.8, 1.0)


def draw_sets():
    rng = np.random.default_rng(SEED)
    drawn = []
    for target in UTILIZATIONS:
        for _ in range(N_SETS // len(UTILIZATIONS)):
            drawn.append(
                integer_task_set(3, target, periods=(4, 6, 8), rng=rng)
            )
    return drawn


def test_rm_agreement(benchmark):
    sets = draw_sets()

    def run():
        rows = []
        agree = 0
        for tasks in sets:
            instance = task_set_to_system(
                tasks, scheduling=SchedulingProtocol.RATE_MONOTONIC
            )
            t0 = time.perf_counter()
            oracle = rta_schedulable(tasks, ordering="rate")
            rta_ms = (time.perf_counter() - t0) * 1000
            t0 = time.perf_counter()
            result = analyze_model(instance, max_states=500_000)
            acsr_ms = (time.perf_counter() - t0) * 1000
            assert result.verdict is not Verdict.UNKNOWN
            match = result.schedulable == oracle
            agree += match
            rows.append(
                [
                    f"U={tasks.utilization:.2f}",
                    "yes" if oracle else "no",
                    result.verdict.value,
                    f"{rta_ms:.2f}",
                    f"{acsr_ms:.1f}",
                    "OK" if match else "MISMATCH",
                ]
            )
        return rows, agree

    rows, agree = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agree == len(rows), "ACSR and RTA verdicts must agree exactly"
    print_table(
        "T-SCHED RM: ACSR exploration vs exact RTA "
        f"(agreement {agree}/{len(rows)})",
        ["set", "RTA", "ACSR", "RTA ms", "ACSR ms", "agree"],
        rows,
    )


def test_edf_agreement(benchmark):
    sets = draw_sets()

    def run():
        rows = []
        agree = 0
        for tasks in sets:
            instance = task_set_to_system(
                tasks,
                scheduling=SchedulingProtocol.EARLIEST_DEADLINE_FIRST,
            )
            oracle = edf_schedulable(tasks)
            result = analyze_model(instance, max_states=500_000)
            assert result.verdict is not Verdict.UNKNOWN
            match = result.schedulable == oracle
            agree += match
            rows.append(
                [
                    f"U={tasks.utilization:.2f}",
                    "yes" if oracle else "no",
                    result.verdict.value,
                    "OK" if match else "MISMATCH",
                ]
            )
        return rows, agree

    rows, agree = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agree == len(rows), "ACSR and demand verdicts must agree exactly"
    print_table(
        "T-SCHED EDF: ACSR exploration vs demand criterion "
        f"(agreement {agree}/{len(rows)})",
        ["set", "demand", "ACSR", "agree"],
        rows,
    )
