"""T-SCALE: state-space growth (S4.1 precision trade-off, S7 future work).

Two sweeps:

* states/time vs thread count on one processor -- exploration cost grows
  with model size (the scalability limit S7 wants to attack);
* states vs quantum size on the cruise-control model -- 'precision of
  the timing analysis can be improved by making scheduling quanta
  smaller, which tends to increase the size of the state space.'

Both sweeps, and the memoization check, report the engine's own
statistics (states/sec, cache hit rate) from the
:class:`repro.engine.EngineStats` snapshot attached to every
exploration result.
"""

import time

import numpy as np
import pytest

from repro.aadl.gallery import cruise_control
from repro.aadl.properties import ms
from repro.analysis import Verdict, analyze_model
from repro.workloads import integer_task_set, task_set_to_system

from conftest import print_table

SEED = 5506  # SAE AS5506


def test_states_vs_thread_count(benchmark):
    rng = np.random.default_rng(SEED)

    def sweep():
        rows = []
        for n in (1, 2, 3, 4):
            tasks = integer_task_set(
                n, 0.12 * n, periods=(4, 8), rng=rng, name_prefix=f"n{n}t"
            )
            instance = task_set_to_system(tasks)
            t0 = time.perf_counter()
            result = analyze_model(
                instance, max_states=2_000_000, stop_at_first_deadlock=False
            )
            elapsed = time.perf_counter() - t0
            assert result.verdict is not Verdict.UNKNOWN
            stats = result.exploration.stats
            rows.append(
                (
                    n,
                    result.num_states,
                    f"{elapsed * 1000:.1f}",
                    f"{stats.states_per_second:,.0f}",
                    f"{stats.cache_hit_rate:.1%}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = [states for _, states, _, _, _ in rows]
    assert sizes == sorted(sizes)
    print_table(
        "T-SCALE states vs thread count (U = 0.12/thread)",
        ["threads", "states", "ms", "states/s", "cache hit"],
        rows,
    )


def test_states_vs_quantum(benchmark):
    instance = cruise_control()

    def sweep():
        rows = []
        for quantum in (10, 5, 2, 1):
            t0 = time.perf_counter()
            result = analyze_model(
                instance,
                quantum=ms(quantum),
                max_states=2_000_000,
                stop_at_first_deadlock=False,
            )
            elapsed = time.perf_counter() - t0
            assert result.verdict is Verdict.SCHEDULABLE
            stats = result.exploration.stats
            rows.append(
                (
                    f"{quantum} ms",
                    result.num_states,
                    f"{elapsed * 1000:.1f}",
                    f"{stats.states_per_second:,.0f}",
                    f"{stats.cache_hit_rate:.1%}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = [states for _, states, _, _, _ in rows]
    # Tendency, not strict monotonicity: finest >> coarsest.
    assert sizes[-1] > sizes[0]
    print_table(
        "T-SCALE cruise control states vs quantum",
        ["quantum", "states", "ms", "states/s", "cache hit"],
        rows,
    )


def test_memoization_effectiveness(benchmark):
    """The step cache is the engine's hot path: re-exploring a system is
    dramatically cheaper than the first pass, and the engine's per-run
    cache counters make the effect directly observable."""
    from repro.engine import Budget, explore
    from repro.translate import translate

    translation = translate(cruise_control())

    def first_and_second():
        budget = Budget(max_states=1_000_000)
        cold_result = explore(translation.system, budget=budget)
        warm_result = explore(translation.system, budget=budget)
        return cold_result.stats, warm_result.stats

    cold, warm = benchmark.pedantic(
        first_and_second, rounds=1, iterations=1
    )
    assert warm.elapsed < cold.elapsed
    # The warm pass finds every successor set already memoized.
    assert warm.cache_hit_rate > cold.cache_hit_rate
    assert warm.cache_hit_rate > 0.99
    print_table(
        "T-SCALE transition-memo effectiveness (same system twice)",
        ["cold ms", "warm ms", "speedup", "cold hit", "warm hit"],
        [
            [
                f"{cold.elapsed * 1000:.1f}",
                f"{warm.elapsed * 1000:.1f}",
                f"{cold.elapsed / warm.elapsed:.1f}x",
                f"{cold.cache_hit_rate:.1%}",
                f"{warm.cache_hit_rate:.1%}",
            ]
        ],
    )
