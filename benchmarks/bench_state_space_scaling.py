"""T-SCALE: state-space growth (S4.1 precision trade-off, S7 future work).

Two sweeps:

* states/time vs thread count on one processor -- exploration cost grows
  with model size (the scalability limit S7 wants to attack);
* states vs quantum size on the cruise-control model -- 'precision of
  the timing analysis can be improved by making scheduling quanta
  smaller, which tends to increase the size of the state space.'
"""

import time

import numpy as np
import pytest

from repro.aadl.gallery import cruise_control
from repro.aadl.properties import ms
from repro.analysis import Verdict, analyze_model
from repro.workloads import integer_task_set, task_set_to_system

from conftest import print_table

SEED = 5506  # SAE AS5506


def test_states_vs_thread_count(benchmark):
    rng = np.random.default_rng(SEED)

    def sweep():
        rows = []
        for n in (1, 2, 3, 4):
            tasks = integer_task_set(
                n, 0.12 * n, periods=(4, 8), rng=rng, name_prefix=f"n{n}t"
            )
            instance = task_set_to_system(tasks)
            t0 = time.perf_counter()
            result = analyze_model(
                instance, max_states=2_000_000, stop_at_first_deadlock=False
            )
            elapsed = time.perf_counter() - t0
            assert result.verdict is not Verdict.UNKNOWN
            rows.append((n, result.num_states, f"{elapsed * 1000:.1f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = [states for _, states, _ in rows]
    assert sizes == sorted(sizes)
    print_table(
        "T-SCALE states vs thread count (U = 0.12/thread)",
        ["threads", "states", "ms"],
        rows,
    )


def test_states_vs_quantum(benchmark):
    instance = cruise_control()

    def sweep():
        rows = []
        for quantum in (10, 5, 2, 1):
            t0 = time.perf_counter()
            result = analyze_model(
                instance,
                quantum=ms(quantum),
                max_states=2_000_000,
                stop_at_first_deadlock=False,
            )
            elapsed = time.perf_counter() - t0
            assert result.verdict is Verdict.SCHEDULABLE
            rows.append(
                (f"{quantum} ms", result.num_states, f"{elapsed * 1000:.1f}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = [states for _, states, _ in rows]
    # Tendency, not strict monotonicity: finest >> coarsest.
    assert sizes[-1] > sizes[0]
    print_table(
        "T-SCALE cruise control states vs quantum",
        ["quantum", "states", "ms"],
        rows,
    )


def test_memoization_effectiveness(benchmark):
    """The step cache is the engine's hot path: re-exploring a system is
    dramatically cheaper than the first pass."""
    from repro.translate import translate
    from repro.versa import Explorer

    translation = translate(cruise_control())

    def first_and_second():
        t0 = time.perf_counter()
        Explorer(translation.system, max_states=1_000_000).run()
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        Explorer(translation.system, max_states=1_000_000).run()
        warm = time.perf_counter() - t0
        return cold, warm

    cold, warm = benchmark.pedantic(first_and_second, rounds=1, iterations=1)
    assert warm < cold
    print_table(
        "T-SCALE transition-memo effectiveness (same system twice)",
        ["cold ms", "warm ms", "speedup"],
        [[f"{cold*1000:.1f}", f"{warm*1000:.1f}", f"{cold/warm:.1f}x"]],
    )
