"""FIG4: the thread skeleton and its semantic automaton.

Regenerates: single-thread systems per dispatch protocol, checking the
skeleton's conformance to the Figure 4 automaton -- AwaitDispatch waits,
dispatch enters Compute, completion returns to AwaitDispatch, and the
computeDeadline timeout realizes the Violation deadlock.
"""

import pytest

from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis import Verdict, analyze_model
from repro.translate import translate
from repro.versa import Explorer

from conftest import print_table


def single_thread(protocol: DispatchProtocol, wcet=2, deadline=4, period=8):
    b = SystemBuilder("Fig4")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.DEADLINE_MONOTONIC)
    thread = b.thread(
        "worker",
        dispatch=protocol,
        period=(
            ms(period)
            if protocol
            in (DispatchProtocol.PERIODIC, DispatchProtocol.SPORADIC)
            else None
        ),
        compute_time=(ms(wcet), ms(wcet)),
        deadline=ms(deadline),
        processor=cpu,
    )
    if protocol is not DispatchProtocol.PERIODIC:
        thread.in_event_port("go")
        driver = b.thread(
            "driver",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(period),
            compute_time=(ms(1), ms(1)),
            deadline=ms(period),
            processor=cpu,
        )
        driver.out_event_port("go")
        b.connect(driver, "go", thread, "go")
    return b.instantiate()


@pytest.mark.parametrize(
    "protocol",
    [
        DispatchProtocol.PERIODIC,
        DispatchProtocol.APERIODIC,
        DispatchProtocol.SPORADIC,
        DispatchProtocol.BACKGROUND,
    ],
)
def test_skeleton_per_protocol(benchmark, protocol):
    instance = single_thread(protocol)

    def run():
        return analyze_model(instance, stop_at_first_deadlock=False)

    result = benchmark(run)
    assert result.verdict is Verdict.SCHEDULABLE
    print_table(
        f"FIG4 skeleton [{protocol.value}]",
        ["verdict", "states"],
        [[result.verdict.value, result.num_states]],
    )


def test_skeleton_states_visited(benchmark):
    """AwaitDispatch, Compute and Finish states all occur in the
    reachable space of a periodic thread."""
    instance = single_thread(DispatchProtocol.PERIODIC)
    translation = translate(instance)

    def explore():
        return Explorer(translation.system, store_transitions=True).run()

    result = benchmark(explore)
    seen_kinds = set()
    from repro.analysis.raising import _components

    for state in result.states():
        for ref in _components(state):
            entry = translation.names.lookup(ref.name)
            if entry:
                seen_kinds.add(entry[0])
    assert {"await", "compute", "finish"} <= seen_kinds


def test_violation_deadlock(benchmark):
    """An infeasible thread (interference exceeds deadline slack) drives
    the skeleton into the Violation deadlock."""
    b = SystemBuilder("Fig4V")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.DEADLINE_MONOTONIC)
    b.thread(
        "hog",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(3), ms(3)),
        deadline=ms(3),
        processor=cpu,
    )
    b.thread(
        "victim",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(3), ms(3)),
        deadline=ms(8),
        processor=cpu,
    )
    instance = b.instantiate()

    result = benchmark(lambda: analyze_model(instance))
    assert result.verdict is Verdict.UNSCHEDULABLE
    assert result.scenario.misses == ["Fig4V.victim"]
