"""T-PRIO: ablation of the prioritized transition relation.

The preemption relation is what turns ACSR's resource semantics into a
*scheduler*: removing it (exploring the unprioritized relation) both
inflates the state space with dominated interleavings and destroys the
schedulability verdict (low-priority work can 'win' the cpu).  Checked
shape: prioritized transitions are a strict subset; the unprioritized
cruise-control space is larger by a clear factor; a schedulable system
appears unschedulable without priorities.
"""

import pytest

from repro.aadl.gallery import cruise_control, two_periodic_threads
from repro.translate import translate
from repro.versa import Explorer

from conftest import print_table


def test_cruise_control_reduction(benchmark):
    translation = translate(cruise_control())

    def run():
        pri = Explorer(
            translation.system, prioritized=True, max_states=2_000_000
        ).run()
        unpri = Explorer(
            translation.system, prioritized=False, max_states=2_000_000
        ).run()
        return pri, unpri

    pri, unpri = benchmark.pedantic(run, rounds=1, iterations=1)
    assert unpri.num_states > pri.num_states
    assert unpri.num_transitions > 2 * pri.num_transitions
    print_table(
        "T-PRIO cruise control: prioritized vs unprioritized",
        ["relation", "states", "transitions"],
        [
            ["prioritized", pri.num_states, pri.num_transitions],
            ["unprioritized", unpri.num_states, unpri.num_transitions],
            [
                "reduction",
                f"{unpri.num_states / pri.num_states:.1f}x",
                f"{unpri.num_transitions / pri.num_transitions:.1f}x",
            ],
        ],
    )


def test_priorities_carry_the_verdict(benchmark):
    """Without preemption, the idle step coexists with computation:
    the processor can 'choose' to starve a thread, so a schedulable
    system exhibits spurious deadline deadlocks."""
    translation = translate(two_periodic_threads(schedulable=True))

    def run():
        pri = Explorer(translation.system, prioritized=True).run()
        unpri = Explorer(
            translation.system, prioritized=False, max_states=500_000
        ).run()
        return pri, unpri

    pri, unpri = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pri.deadlock_free
    assert not unpri.deadlock_free
    print_table(
        "T-PRIO verdict with and without the prioritized relation",
        ["relation", "deadlock-free"],
        [
            ["prioritized", pri.deadlock_free],
            ["unprioritized", unpri.deadlock_free],
        ],
    )
