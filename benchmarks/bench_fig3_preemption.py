"""FIG3: parallel composition, preemption, and scope exits.

Regenerates: the Figure 3 system -- Simple under a temporal scope with
exception/interrupt exits, composed with the driver that preempts it on
the bus.  Checked shape: the driver's (bus,2) claim excludes Simple's
cpu+bus step for one quantum; both the interrupt handler and the
exception handler are reachable; the composed state space stays tiny.
"""

import pytest

from repro.acsr import parse_env
from repro.acsr.resources import Action
from repro.versa import Explorer, find_reachable
from repro.versa.queries import contains_proc

from conftest import print_table

FIGURE3 = r"""
process Simple  = {(cpu,1)} : Step2
                + idle : (exc!,1) . Simple;
process Step2   = {(cpu,1),(bus,1)} : (done!,1) . Simple
                + idle : Step2;
process Driver  = {(bus,2)} : {(bus,2)} : idle :
                  ( (interrupt!,0) . DriverIdle
                  + {(cpu,2)} : Starver );
process Starver = {(cpu,2)} : Starver;
process DriverIdle = idle : DriverIdle;
process ExcHandler = idle : ExcHandler;
process IntHandler = idle : IntHandler;
system ( scope( Simple; inf;
                except exc -> ExcHandler;
                interrupt -> (interrupt?,0) . IntHandler )
         || Driver ) \ {interrupt};
"""


@pytest.fixture(scope="module")
def system():
    env, root = parse_env(FIGURE3)
    return env.close(root)


def test_exploration(benchmark, system):
    result = benchmark(lambda: Explorer(system).run())
    assert result.completed
    assert result.deadlock_free
    print_table(
        "FIG3 composed state space",
        ["states", "transitions"],
        [[result.num_states, result.num_transitions]],
    )


def test_bus_preemption_step(benchmark, system):
    """Second quantum: the driver holds (bus,2); Simple cannot take its
    cpu+bus step and idles (Figure 3's 'preempts the execution of Simple
    for one time step')."""

    def second_state_labels():
        steps = system.prioritized_steps(system.root)
        timed = [(l, s) for l, s in steps if isinstance(l, Action)]
        _, state = timed[0]
        return [l for l, _ in system.prioritized_steps(state)]

    labels = benchmark(second_state_labels)
    for label in labels:
        if isinstance(label, Action):
            assert label.priority_of("bus") == 2
            assert "cpu" not in label


def test_interrupt_exit_reachable(benchmark, system):
    trace = benchmark(
        find_reachable, system, contains_proc("IntHandler")
    )
    assert trace is not None


def test_exception_exit_reachable(benchmark, system):
    trace = benchmark(
        find_reachable, system, contains_proc("ExcHandler")
    )
    assert trace is not None
    # The exception requires the full first iteration plus a starved
    # quantum: strictly longer than the shortest interrupt path.
    interrupt_trace = find_reachable(system, contains_proc("IntHandler"))
    assert len(trace) > len(interrupt_trace)
    print_table(
        "FIG3 exit scenarios",
        ["exit", "trace length"],
        [
            ["interrupt (involuntary)", len(interrupt_trace)],
            ["exception (starved)", len(trace)],
        ],
    )
