"""FIG2: the 'Simple' ACSR process (computation + communication steps).

Regenerates: Figure 2a (deadlocks when the environment blocks `done`)
and Figure 2b (idling steps let the process wait for resources).
Checked shape: 2a's lifecycle is cpu-step, cpu+bus-step, done-handshake;
without a receiver the restricted 2a deadlocks where 2b idles forever.
"""

import pytest

from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    send,
)
from repro.acsr.resources import Action
from repro.versa import Explorer, find_deadlock

from conftest import print_table


def build_simple(with_idling: bool):
    env = ProcessEnv()
    step2 = action({"cpu": 1, "bus": 1}) >> send("done", 1) >> proc("Simple")
    first = action({"cpu": 1}) >> proc("Step2")
    if with_idling:
        env.define("Simple", (), choice(first, idle().then(proc("Simple"))))
        env.define(
            "Step2", (), choice(step2, idle().then(proc("Step2")))
        )
    else:
        env.define("Simple", (), first)
        env.define("Step2", (), step2)
    env.define(
        "Recv",
        (),
        choice(recv("done", 1).then(proc("Recv")), idle().then(proc("Recv"))),
    )
    return env.close(
        restrict(parallel(proc("Simple"), proc("Recv")), ["done"])
    )


def test_figure2a_lifecycle(benchmark):
    system = build_simple(with_idling=False)

    def lifecycle():
        state = system.root
        labels = []
        for _ in range(3):
            steps = system.prioritized_steps(state)
            label, state = steps[0]
            labels.append(label)
        return labels, state

    labels, state = benchmark(lifecycle)
    assert labels[0] is Action([("cpu", 1)])
    assert labels[1] is Action([("cpu", 1), ("bus", 1)])
    assert labels[2].is_tau and labels[2].via == "done"
    assert state is system.root  # loops back
    print_table(
        "FIG2a lifecycle",
        ["step 1", "step 2", "step 3"],
        [[str(l) for l in labels]],
    )


def _bus_hog(env):
    """Holds the bus for two quanta, then idles forever."""
    env.define(
        "Hog",
        (),
        action({"bus": 2}) >> action({"bus": 2}) >> proc("HogIdle"),
    )
    env.define("HogIdle", (), idle().then(proc("HogIdle")))


def test_figure2a_deadlocks_on_busy_resource(benchmark):
    """Without idling steps, Simple cannot wait for the bus: composed
    with a bus hog, its second step is excluded and it deadlocks."""
    env = ProcessEnv()
    env.define(
        "Simple",
        (),
        action({"cpu": 1})
        >> action({"cpu": 1, "bus": 1})
        >> send("done", 1)
        >> proc("Simple"),
    )
    _bus_hog(env)
    system = env.close(parallel(proc("Simple"), proc("Hog")))
    trace = benchmark(find_deadlock, system)
    assert trace is not None and trace.duration == 1


def test_figure2b_idling_waits_for_resource(benchmark):
    """With idling steps (Fig 2b) the process waits for the bus and
    completes once the hog releases it."""
    env = ProcessEnv()
    env.define(
        "Simple",
        (),
        choice(
            action({"cpu": 1}) >> proc("Step2"),
            idle().then(proc("Simple")),
        ),
    )
    env.define(
        "Step2",
        (),
        choice(
            action({"cpu": 1, "bus": 1}) >> send("done", 1) >> proc("Simple"),
            idle().then(proc("Step2")),
        ),
    )
    _bus_hog(env)
    system = env.close(parallel(proc("Simple"), proc("Hog")))

    def explore():
        return Explorer(system).run()

    result = benchmark(explore)
    assert result.deadlock_free
    print_table(
        "FIG2 idling vs non-idling while a hog holds the bus",
        ["variant", "deadlocks"],
        [["2a (no idling)", "yes"], ["2b (idling)", "no"]],
    )
