"""T-POLICY: scheduling-policy encodings across a utilization sweep (S5).

Regenerates the acceptance-rate curves of RM vs EDF (both verdicts from
the ACSR exploration).  Checked shape: EDF's acceptance rate dominates
RM's at every utilization level; both are 100% at low utilization; EDF
stays at 100% up to U = 1.0 (optimality) while RM falls off between the
Liu-Layland bound (~0.83 for n=2..3) and 1.0.
"""

import numpy as np
import pytest

from repro.analysis import Verdict, analyze_model
from repro.aadl.properties import SchedulingProtocol
from repro.workloads import integer_task_set, task_set_to_system

from conftest import print_table

SEED = 1639421  # the paper's IEEE article number
SETS_PER_LEVEL = 8
LEVELS = (0.6, 0.8, 0.9, 1.0)


def acceptance(tasks_list, scheduling):
    accepted = 0
    for tasks in tasks_list:
        instance = task_set_to_system(tasks, scheduling=scheduling)
        result = analyze_model(instance, max_states=500_000)
        assert result.verdict is not Verdict.UNKNOWN
        accepted += result.verdict is Verdict.SCHEDULABLE
    return accepted


def test_policy_acceptance_curves(benchmark):
    from repro.sched import PeriodicTask, TaskSet

    rng = np.random.default_rng(SEED)
    by_level = {
        level: [
            integer_task_set(3, level, periods=(4, 6, 12), rng=rng)
            for _ in range(SETS_PER_LEVEL)
        ]
        for level in LEVELS
    }
    # Random integer sets cluster below their target utilization (C is
    # clamped); pin the U = 1.0 bucket with exactly-full non-harmonic
    # sets, where the RM/EDF separation lives.
    by_level[1.0] = [
        TaskSet([PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]),
        TaskSet([PeriodicTask("a", 1, 4), PeriodicTask("b", 3, 6),
                 PeriodicTask("c", 3, 12)]),
        TaskSet([PeriodicTask("a", 2, 4), PeriodicTask("b", 4, 8)]),
        TaskSet([PeriodicTask("a", 3, 6), PeriodicTask("b", 6, 12)]),
    ]

    def run():
        rows = []
        for level, tasks_list in by_level.items():
            # Realized utilizations deviate from the target (integer C);
            # keep only sets that stayed at or below 1.0 so EDF optimality
            # is the expected shape.
            feasible = [t for t in tasks_list if t.utilization <= 1.0]
            rm = acceptance(feasible, SchedulingProtocol.RATE_MONOTONIC)
            edf = acceptance(
                feasible, SchedulingProtocol.EARLIEST_DEADLINE_FIRST
            )
            rows.append((level, len(feasible), rm, edf))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for _, total, rm, edf in rows:
        assert edf >= rm, "EDF must dominate RM"
        assert edf == total, "EDF schedules every U <= 1 set (optimality)"
    # RM falls off somewhere in the sweep (the separation exists).
    assert any(rm < total for _, total, rm, _ in rows)
    print_table(
        "T-POLICY acceptance by utilization (ACSR verdicts)",
        ["target U", "sets (U<=1)", "RM accepts", "EDF accepts"],
        rows,
    )


def test_pinned_separation_case(benchmark):
    """The canonical (2,4),(3,6) case: RM no, EDF & LLF yes."""
    from repro.sched import PeriodicTask, TaskSet

    tasks = TaskSet([PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)])

    def run():
        verdicts = {}
        for policy in (
            SchedulingProtocol.RATE_MONOTONIC,
            SchedulingProtocol.DEADLINE_MONOTONIC,
            SchedulingProtocol.EARLIEST_DEADLINE_FIRST,
            SchedulingProtocol.LEAST_LAXITY_FIRST,
        ):
            result = analyze_model(
                task_set_to_system(tasks, scheduling=policy)
            )
            verdicts[policy.value] = result.verdict
        return verdicts

    verdicts = benchmark(run)
    assert verdicts["RMS"] is Verdict.UNSCHEDULABLE
    assert verdicts["DMS"] is Verdict.UNSCHEDULABLE
    assert verdicts["EDF"] is Verdict.SCHEDULABLE
    assert verdicts["LLF"] is Verdict.SCHEDULABLE
    print_table(
        "T-POLICY pinned separation case (C,T)=(2,4),(3,6), U=1.0",
        ["policy", "verdict"],
        [[k, v.value] for k, v in verdicts.items()],
    )
