"""T-PORTFOLIO: analytic tiers vs exhaustive exploration.

The portfolio's acceptance claim: on the classical fragment the tier
chain reaches the exploration's verdict in microseconds with **zero**
states explored, and over a seeded campaign the analytic tiers decide
the majority of cases.  Two measurements pin it:

* per-model -- ``analyze_portfolio`` vs ``analyze_model`` on the
  gallery's two-thread model (both variants), asserting verdict
  equality, 0 analytic states, and a wall-clock win;
* campaign -- a seeded sweep over the oracle's smoke envelope,
  asserting the analytic share stays above one half (the ISSUE bar).
"""

import time

import pytest

from repro.aadl.gallery import two_periodic_threads
from repro.analysis import analyze_model
from repro.portfolio import analyze_portfolio

from conftest import print_table

MAX_STATES = 400_000
CAMPAIGN_SEEDS = 40


@pytest.mark.parametrize("schedulable", [True, False])
def test_portfolio_skips_exploration(benchmark, schedulable):
    instance = two_periodic_threads(schedulable=schedulable)
    exploration = analyze_model(instance, max_states=MAX_STATES)

    result = benchmark.pedantic(
        lambda: analyze_portfolio(instance, max_states=MAX_STATES),
        rounds=5,
        iterations=1,
    )

    assert result.verdict is exploration.verdict
    assert result.num_states == 0
    assert result.decided_by != "exploration"

    print_table(
        f"two_periodic_threads(schedulable={schedulable})",
        ["run", "verdict", "states", "decided by"],
        [
            (
                "exploration",
                exploration.verdict.value,
                exploration.num_states,
                "exploration",
            ),
            (
                "portfolio",
                result.verdict.value,
                result.num_states,
                result.decided_by,
            ),
        ],
    )


def test_campaign_analytic_share(benchmark):
    """Over the oracle smoke envelope the analytic tiers must carry at
    least half the verdicts (the ISSUE acceptance bar) -- in practice
    the classical fragment is fully covered and the share is ~100%."""
    from repro.oracle import run_portfolio_campaign

    started = time.perf_counter()
    report = benchmark.pedantic(
        lambda: run_portfolio_campaign(
            seeds=CAMPAIGN_SEEDS, base_seed=0, max_states=MAX_STATES
        ),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - started

    assert report.disagreements == []
    analytic = report.analytic
    assert len(analytic) * 2 >= len(report.outcomes)
    assert all(o.portfolio_states == 0 for o in analytic)

    rows = [
        (name, count)
        for name, count in sorted(
            report.tier_histogram().items(), key=lambda kv: -kv[1]
        )
    ]
    print_table(
        f"portfolio campaign ({CAMPAIGN_SEEDS} seeds, {elapsed:.1f}s): "
        f"deciding tiers",
        ["tier", "cases"],
        rows,
    )
