"""Shared helpers for the benchmark harness.

Each bench module regenerates one artifact of the paper (figure or
checkable claim; see DESIGN.md S3) and asserts its *shape* -- who wins,
by roughly what factor, where crossovers fall -- while pytest-benchmark
records the timing.  Run with::

    pytest benchmarks/ --benchmark-only

Printed tables summarize the regenerated series; EXPERIMENTS.md records
the measured values next to the paper's claims.
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers, rows) -> None:
    """Render a small result table to stdout (shown with -s)."""
    widths = [
        max(len(str(h)), *(len(str(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print()
    print(f"== {title} ==")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  "
            + "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
