"""T-SERVE: analysis-service throughput, cold misses vs cache hits.

Boots a real :class:`~repro.serve.ReproServer` (thread executor,
ephemeral port) and measures end-to-end HTTP request throughput in two
phases over the same client path:

* **miss phase** -- N requests with distinct cache keys; every one
  queues, runs the full AADL -> ACSR -> exploration pipeline in a
  worker, and answers through the verdict endpoint;
* **hit phase** -- 5N requests that all repeat proven keys (a 100% >=
  90% hit rate), each answered inline from the shared
  :class:`~repro.batch.cache.VerdictCache` on submit.

The service's reason to exist is that the hit path costs one HTTP
round trip plus one cache read instead of a model-checking run, so the
asserted shape is a >= 10x throughput ratio -- loose against the
measured ~100x+, tight against any regression that silently drops the
cache out of the serve path.
"""

import asyncio
import json
import threading
import time
from http.client import HTTPConnection

from repro.aadl.gallery import cruise_control_text
from repro.batch import VerdictCache
from repro.serve import AnalysisService, ReproServer

from conftest import print_table

#: distinct proofs in the miss phase (split by state budget, which is
#: cache-key material)
MISS_JOBS = 6
#: requests in the hit phase, all repeats
HIT_REQUESTS = 30


def _boot(tmp_path):
    service = AnalysisService(
        cache=VerdictCache(str(tmp_path / "cache")),
        workers=2,
        backlog=MISS_JOBS + 2,
        executor="thread",
        artifacts_dir=None,
    )
    server = ReproServer(service, host="127.0.0.1", port=0)
    started = threading.Event()
    holder = {}

    def run():
        async def main():
            await server.start()
            holder["addr"] = server.address
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            started.set()
            await holder["stop"].wait()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    stop = lambda: (  # noqa: E731 - tiny teardown closure
        holder["loop"].call_soon_threadsafe(holder["stop"].set),
        thread.join(30),
    )
    return holder["addr"], service, stop


def _request(addr, method, path, body=None):
    conn = HTTPConnection(*addr, timeout=120)
    conn.request(
        method,
        path,
        body=json.dumps(body) if body is not None else None,
        headers={"Content-Type": "application/json"},
    )
    resp = conn.getresponse()
    data = json.loads(resp.read())
    conn.close()
    return resp.status, data

def _analyze_and_wait(addr, budget):
    """Submit one request and block until its verdict is final."""
    status, body = _request(
        addr,
        "POST",
        "/v1/analyze",
        {
            "source": cruise_control_text(),
            "options": {"max_states": budget},
        },
    )
    if status == 200:  # answered inline (cache hit)
        return body["disposition"]
    rid = body["request_id"]
    while True:
        status, result = _request(addr, "GET", f"/v1/jobs/{rid}/result")
        if status != 202:
            assert status == 200, result
            return body["disposition"]
        time.sleep(0.01)


def test_cache_hit_throughput_dominates_misses(benchmark, tmp_path):
    budgets = [100_000 + i for i in range(MISS_JOBS)]
    addr, service, stop = _boot(tmp_path)
    try:
        t0 = time.perf_counter()
        for budget in budgets:
            disposition = _analyze_and_wait(addr, budget)
            assert disposition == "queued"
        miss_elapsed = time.perf_counter() - t0
        hits_before = service.cache.hits

        def hit_phase():
            for i in range(HIT_REQUESTS):
                disposition = _analyze_and_wait(
                    addr, budgets[i % MISS_JOBS]
                )
                assert disposition == "cached"

        t1 = time.perf_counter()
        benchmark.pedantic(hit_phase, rounds=1, iterations=1)
        hit_elapsed = time.perf_counter() - t1
        assert service.cache.hits - hits_before == HIT_REQUESTS
    finally:
        stop()

    miss_rps = MISS_JOBS / miss_elapsed
    hit_rps = HIT_REQUESTS / hit_elapsed
    # The acceptance bar: a >= 90%-hit workload must clear 10x the
    # all-miss throughput (measured here at 100% hits).
    assert hit_rps >= 10 * miss_rps, (
        f"hit throughput {hit_rps:.1f} rps is under 10x miss "
        f"throughput {miss_rps:.1f} rps"
    )

    print_table(
        "serve throughput (thread executor, 2 workers, one client)",
        ["phase", "requests", "wall s", "req/s"],
        [
            ("all-miss", MISS_JOBS, f"{miss_elapsed:.2f}",
             f"{miss_rps:.1f}"),
            ("all-hit", HIT_REQUESTS, f"{hit_elapsed:.2f}",
             f"{hit_rps:.1f}"),
        ],
    )
