"""FIG1: the cruise-control case study (paper Figure 1 + S4.1 claim).

Regenerates: the translation of the Figure 1 model and its analysis.
Checked shape: 6 thread processes + 6 dispatchers + 0 queue processes;
the nominal model is schedulable; the overloaded variant yields a
deadline-miss scenario on the CCL processor raised to AADL terms.
"""

import pytest

from repro.aadl.gallery import cruise_control
from repro.analysis import Verdict, analyze_model
from repro.translate import translate
from repro.versa import Explorer

from conftest import print_table


def test_translation_counts(benchmark):
    instance = cruise_control()
    result = benchmark(translate, instance)
    assert result.num_thread_processes == 6
    assert result.num_dispatchers == 6
    assert result.num_queue_processes == 0
    print_table(
        "FIG1 translation (paper: 6 threads / 6 dispatchers / 0 queues)",
        ["thread processes", "dispatchers", "queue processes"],
        [[
            result.num_thread_processes,
            result.num_dispatchers,
            result.num_queue_processes,
        ]],
    )


def test_nominal_analysis(benchmark):
    instance = cruise_control()

    def run():
        return analyze_model(instance, stop_at_first_deadlock=False)

    result = benchmark(run)
    assert result.verdict is Verdict.SCHEDULABLE
    print_table(
        "FIG1 nominal verdict",
        ["verdict", "states", "quantum"],
        [[result.verdict.value, result.num_states,
          str(result.translation.quantizer.quantum)]],
    )


def test_overloaded_scenario(benchmark):
    instance = cruise_control(overloaded=True)

    def run():
        return analyze_model(instance)

    result = benchmark(run)
    assert result.verdict is Verdict.UNSCHEDULABLE
    assert result.scenario is not None
    assert any("ccl" in miss for miss in result.scenario.misses)
    print_table(
        "FIG1 overloaded failing scenario",
        ["missed thread", "at quantum", "trace events"],
        [[", ".join(result.scenario.misses),
          result.scenario.duration,
          len(result.scenario.events)]],
    )


def test_exploration_exhaustive(benchmark):
    translation = translate(cruise_control())

    def run():
        return Explorer(translation.system, max_states=1_000_000).run()

    exploration = benchmark(run)
    assert exploration.completed and exploration.deadlock_free
