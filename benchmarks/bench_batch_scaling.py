"""T-BATCH: worker-pool scaling and verdict-cache reuse.

Three measurements over one deterministic job list (a utilization sweep
of oracle cases):

* cold serial run (``workers=1``, no cache) -- the baseline;
* cold pooled run (``workers=min(4, cores)``) -- same verdicts, wall
  clock bounded by the slowest worker share.  The speedup assertion
  only fires on multi-core machines; on one core the pool degrades to
  the inline path by design;
* warm cached run -- every verdict served from ``VerdictCache`` with
  zero fresh engine work.
"""

import os

import pytest

from repro.batch import VerdictCache, run_batch, utilization_sweep_jobs

from conftest import print_table

SEED = 5506  # SAE AS5506
UTILIZATIONS = (0.3, 0.5, 0.7, 0.9, 1.0, 1.1)


def _jobs():
    return utilization_sweep_jobs(
        3,
        UTILIZATIONS,
        base_seed=SEED,
        max_states=200_000,
        periods=(4, 8),
    )


def test_pool_scaling_and_cache_reuse(benchmark, tmp_path):
    cores = os.cpu_count() or 1
    pooled_workers = min(4, cores)
    cache = VerdictCache(str(tmp_path / "cache"))

    serial = run_batch(_jobs(), workers=1)

    def pooled_run():
        return run_batch(_jobs(), workers=pooled_workers)

    pooled = benchmark.pedantic(pooled_run, rounds=1, iterations=1)

    cold = run_batch(_jobs(), workers=1, cache=cache)
    warm = run_batch(_jobs(), workers=1, cache=cache)

    # Identical verdicts regardless of pool width or cache state.
    verdicts = [r.verdict for r in serial.results]
    assert [r.verdict for r in pooled.results] == verdicts
    assert [r.verdict for r in cold.results] == verdicts
    assert [r.verdict for r in warm.results] == verdicts

    assert warm.cache_hits == len(UTILIZATIONS)
    assert warm.cache_misses == 0
    assert warm.stats.states == 0  # no fresh exploration at all
    # The warm run must not cost more than the serial cold run; on any
    # non-trivial job list it is orders of magnitude cheaper.
    assert warm.elapsed <= max(serial.elapsed, 0.05)

    if cores >= 2 and serial.elapsed > 0.5:
        # Loose bound: pooling must recover at least some parallelism
        # once the work is big enough to amortize worker startup.
        assert pooled.elapsed < serial.elapsed * 1.1

    print_table(
        "batch scaling (one utilization sweep, 6 jobs)",
        ["run", "workers", "wall s", "vc hits", "engine states"],
        [
            ("serial cold", 1, f"{serial.elapsed:.2f}", 0,
             serial.stats.states),
            ("pooled cold", pooled.workers, f"{pooled.elapsed:.2f}", 0,
             pooled.stats.states),
            ("serial cold+cache", 1, f"{cold.elapsed:.2f}",
             cold.cache_hits, cold.stats.states),
            ("serial warm", 1, f"{warm.elapsed:.2f}", warm.cache_hits,
             warm.stats.states),
        ],
    )
    print_table(
        "verdicts across the sweep",
        ["utilization", "verdict", "states"],
        [
            (f"{u:.1f}", r.verdict, r.states)
            for u, r in zip(UTILIZATIONS, serial.results)
        ],
    )
