"""Legacy shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables
setuptools' legacy editable-install path in offline environments.
"""

from setuptools import setup

setup()
