"""Tests of the :mod:`repro.obs` span tracer and its CLI surface."""

import json
import os

import pytest

from repro.aadl.gallery import cruise_control_text
from repro.cli import main
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    PIPELINE_STAGES,
    SpanObserver,
    TraceSchemaError,
    Tracer,
    activate,
    current_tracer,
    missing_pipeline_stages,
    read_trace,
    summarize,
    summarize_file,
    validate_records,
)


class FakeClock:
    """Deterministic monotonic clock: advances by ``step`` per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestTracer:
    def test_span_ids_are_sequential(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.span_id == "s1"
        assert b.span_id == "s2"

    def test_nesting_sets_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.current() is NULL_SPAN

    def test_elapsed_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("timed") as span:
            pass
        assert span.elapsed == pytest.approx(0.5)

    def test_attrs_and_counters(self):
        tracer = Tracer()
        with tracer.span("work", model="m") as span:
            span.set(phase="late").incr("items").incr("items", 2)
        record = span.to_dict()
        assert record["attrs"] == {"model": "m", "phase": "late"}
        assert record["counters"] == {"items": 3}

    def test_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        record = span.to_dict()
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "ValueError"
        assert tracer.current() is NULL_SPAN

    def test_worker_prefix_on_span_ids(self):
        tracer = Tracer(worker="w7")
        with tracer.span("job") as span:
            pass
        assert span.span_id == "w7.s1"

    def test_records_lead_with_meta(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        records = tracer.records()
        assert records[0]["type"] == "meta"
        assert records[0]["schema_version"] == 1
        assert records[1]["name"] == "a"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                inner.incr("hits", 4)
        path = str(tmp_path / "sub" / "trace.jsonl")
        tracer.write_jsonl(path)  # creates the directory
        records = read_trace(path)
        assert [r["type"] for r in records] == ["meta", "span", "span"]
        by_name = {r["name"]: r for r in records if r["type"] == "span"}
        assert by_name["inner"]["counters"] == {"hits": 4}
        assert (
            by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        )


class TestNullTracer:
    def test_disabled_by_default(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_span_is_shared_and_inert(self):
        span = NULL_TRACER.span("anything", big=list(range(100)))
        assert span is NULL_SPAN
        with span as inner:
            inner.set(a=1).incr("b")
        # A second call allocates nothing new.
        assert NULL_TRACER.span("more") is NULL_SPAN

    def test_activate_restores_previous(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_pipeline_untraced_without_tracer(self):
        # Instrumented code runs through the null path untouched.
        from repro.aadl import infer_root, instantiate, parse_model
        from repro.analysis import analyze_model

        model = parse_model(cruise_control_text())
        result = analyze_model(instantiate(model, infer_root(model)))
        assert result.verdict.value == "schedulable"


class TestMerge:
    def test_merge_reparents_and_tags_worker(self):
        worker = Tracer(worker="w9")
        with worker.span("batch.job") as job:
            job.incr("states", 3)
        parent = Tracer()
        with parent.span("batch.run"):
            parent.merge_records(worker.records(), worker="w9")
        spans = [r for r in parent.records() if r["type"] == "span"]
        merged = {r["name"]: r for r in spans}
        assert merged["batch.job"]["attrs"]["worker"] == "w9"
        assert (
            merged["batch.job"]["parent_id"]
            == merged["batch.run"]["span_id"]
        )
        # Worker-prefixed ids stay unique next to the parent's own.
        assert len({r["span_id"] for r in spans}) == len(spans)

    def test_merge_file_reads_worker_from_meta(self, tmp_path):
        worker = Tracer(worker="w3")
        with worker.span("batch.job"):
            pass
        path = str(tmp_path / "w3.jsonl")
        worker.write_jsonl(path)
        parent = Tracer()
        parent.merge_file(path)
        spans = [r for r in parent.records() if r["type"] == "span"]
        assert spans[0]["attrs"]["worker"] == "w3"
        validate_records(parent.records())  # must not raise


class TestSchema:
    def _records(self):
        tracer = Tracer()
        with tracer.span("aadl.parse"):
            pass
        return tracer.records()

    def test_valid_trace_passes(self):
        records = self._records()
        assert validate_records(records) == records

    def test_missing_meta_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_records(self._records()[1:])

    def test_negative_elapsed_rejected(self):
        records = self._records()
        records[1]["elapsed"] = -0.5
        with pytest.raises(TraceSchemaError):
            validate_records(records)

    def test_dangling_parent_rejected(self):
        records = self._records()
        records[1]["parent_id"] = "s999"
        with pytest.raises(TraceSchemaError):
            validate_records(records)

    def test_duplicate_span_ids_rejected(self):
        records = self._records()
        records.append(dict(records[1]))
        with pytest.raises(TraceSchemaError):
            validate_records(records)

    def test_missing_pipeline_stages(self):
        records = self._records()
        missing = missing_pipeline_stages(records)
        assert "aadl.parse" not in missing
        assert set(missing) == set(PIPELINE_STAGES) - {"aadl.parse"}


class TestSummary:
    def test_self_time_subtracts_children(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        summary = summarize(tracer.records())
        stages = {t.name: t for t in summary.stages}
        assert stages["inner"].total == pytest.approx(
            stages["inner"].self_total
        )
        assert stages["outer"].self_total == pytest.approx(
            stages["outer"].total - stages["inner"].total
        )

    def test_counters_aggregate_across_spans(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("stage") as span:
                span.incr("hits", 5)
        summary = summarize(tracer.records())
        stage = {t.name: t for t in summary.stages}["stage"]
        assert stage.count == 2
        assert stage.counters == {"hits": 10}

    def test_format_renders_table(self):
        tracer = Tracer()
        with tracer.span("engine.explore") as span:
            span.incr("states", 42)
        text = summarize(tracer.records()).format()
        assert "engine.explore" in text
        assert "states=42" in text
        assert "slowest span" in text

    def test_summarize_file_validates_first(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "span"}) + "\n")
        with pytest.raises(TraceSchemaError):
            summarize_file(path)


class TestSpanObserver:
    def test_bridges_engine_result_to_counters(self):
        from repro.aadl import infer_root, instantiate, parse_model
        from repro.engine import explore
        from repro.translate import translate

        model = parse_model(cruise_control_text())
        system = translate(
            instantiate(model, infer_root(model))
        ).system
        tracer = Tracer()
        with activate(tracer):
            with tracer.span("engine.explore") as span:
                explore(system, observers=[SpanObserver(span)])
        record = span.to_dict()
        assert record["counters"]["states"] > 0
        assert record["counters"]["transitions"] > 0
        assert record["attrs"]["completed"] is True


class TestCliTracing:
    @pytest.fixture
    def model_file(self, tmp_path):
        path = tmp_path / "model.aadl"
        path.write_text(cruise_control_text())
        return str(path)

    def test_analyze_trace_covers_pipeline(self, model_file, tmp_path, capsys):
        out = str(tmp_path / "trace.jsonl")
        assert main(["analyze", model_file, "--trace", out]) == 0
        records = read_trace(out)
        validate_records(records)  # must not raise
        assert missing_pipeline_stages(records) == []
        assert "wrote trace" in capsys.readouterr().err

    def test_profile_prints_summary_to_stderr(self, model_file, capsys):
        assert main(["analyze", model_file, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "stage" in err
        assert "engine.explore" in err

    def test_trace_summary_subcommand(self, model_file, tmp_path, capsys):
        out = str(tmp_path / "trace.jsonl")
        main(["analyze", model_file, "--trace", out])
        capsys.readouterr()
        assert main(["trace", "summary", out]) == 0
        text = capsys.readouterr().out
        assert "aadl.parse" in text
        assert "engine.explore" in text

    def test_trace_summary_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\n')
        assert main(["trace", "summary", str(path)]) == 2

    def test_batch_trace_merges_worker_spans(self, model_file, tmp_path):
        # The second model must differ from the first: identical inputs
        # now dedupe by cache key and execute only once, which would
        # leave a single worker to observe.  A lighter compute time
        # keeps the variant schedulable.
        variant = tmp_path / "variant.aadl"
        variant.write_text(cruise_control_text().replace("20 ms", "15 ms"))
        out = str(tmp_path / "batch.jsonl")
        code = main(
            [
                "batch",
                "run",
                model_file,
                str(variant),
                "--jobs",
                "2",
                "--trace",
                out,
            ]
        )
        assert code == 0
        records = read_trace(out)
        validate_records(records)  # must not raise
        names = [r["name"] for r in records if r["type"] == "span"]
        assert "batch.run" in names
        assert names.count("batch.job") == 2
        workers = {
            r["attrs"]["worker"]
            for r in records
            if r["type"] == "span" and r["name"] == "batch.job"
        }
        assert len(workers) == 2  # two distinct worker processes

    def test_oracle_run_span_profile(self, tmp_path, capsys):
        code = main(
            [
                "oracle",
                "run",
                "--profile",
                "smoke",
                "--seeds",
                "2",
                "--artifacts",
                str(tmp_path / "art"),
                "--span-profile",
            ]
        )
        assert code in (0, 1)
        assert "oracle.campaign" in capsys.readouterr().err
