"""The compositional ≡ monolithic oracle relation and the compose CLI."""

import pytest

from repro.aadl import format_model
from repro.aadl.gallery import coupled_islands, dual_island
from repro.analysis import Verdict
from repro.cli import main
from repro.oracle import (
    AgreementStatus,
    evaluate_compose_case,
    run_compose_campaign,
)
from repro.oracle.compose import classify_agreement


class TestAgreementRelation:
    def test_equal_decided_verdicts_agree(self):
        assert (
            classify_agreement(Verdict.SCHEDULABLE, Verdict.SCHEDULABLE)
            is AgreementStatus.AGREED
        )
        assert (
            classify_agreement(
                Verdict.UNSCHEDULABLE, Verdict.UNSCHEDULABLE
            )
            is AgreementStatus.AGREED
        )

    def test_decided_mismatch_disagrees(self):
        assert (
            classify_agreement(Verdict.SCHEDULABLE, Verdict.UNSCHEDULABLE)
            is AgreementStatus.DISAGREED
        )

    def test_unknown_is_not_a_disagreement(self):
        """An island can decide what the larger monolithic space cannot
        (or vice versa); budget exhaustion is not unsoundness."""
        assert (
            classify_agreement(Verdict.UNKNOWN, Verdict.SCHEDULABLE)
            is AgreementStatus.UNKNOWN
        )
        assert (
            classify_agreement(Verdict.UNSCHEDULABLE, Verdict.UNKNOWN)
            is AgreementStatus.UNKNOWN
        )


class TestComposeCampaign:
    def test_case_is_seed_reproducible(self):
        first = evaluate_compose_case(7)
        second = evaluate_compose_case(7)
        assert first.status is second.status
        assert first.monolithic_verdict is second.monolithic_verdict
        assert first.compositional_states == second.compositional_states

    def test_small_campaign_agrees(self):
        report = run_compose_campaign(seeds=8, base_seed=0)
        assert len(report.outcomes) == 8
        assert report.disagreements == []
        # The draw must exercise both paths at these seeds.
        modes = {o.mode for o in report.outcomes}
        assert "compositional" in modes
        assert "monolithic-fallback" in modes

    def test_report_format(self):
        report = run_compose_campaign(seeds=4, base_seed=0)
        text = report.format()
        assert "4 case(s)" in text
        assert "disagreed: 0" in text
        assert "states over decomposed cases" in text


@pytest.fixture()
def dual_file(tmp_path):
    path = tmp_path / "dual.aadl"
    path.write_text(format_model(dual_island().declarative))
    return str(path)


@pytest.fixture()
def coupled_file(tmp_path):
    path = tmp_path / "coupled.aadl"
    path.write_text(format_model(coupled_islands().declarative))
    return str(path)


class TestComposeCli:
    def test_analyze_compose_schedulable(self, dual_file, capsys):
        assert main(["analyze", dual_file, "--compose", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "compose: 2 islands" in out
        assert "verdict: schedulable" in out

    def test_analyze_compose_unschedulable(self, tmp_path, capsys):
        path = tmp_path / "bad.aadl"
        path.write_text(
            format_model(dual_island(schedulable=False).declarative)
        )
        assert (
            main(["analyze", str(path), "--compose", "--jobs", "1"]) == 1
        )
        out = capsys.readouterr().out
        assert "counterexample island: island-1-cpu2" in out

    def test_analyze_compose_fallback_logs_reason(
        self, coupled_file, capsys
    ):
        assert (
            main(["analyze", coupled_file, "--compose", "--jobs", "1"])
            == 0
        )
        captured = capsys.readouterr()
        assert "monolithic fallback" in captured.err
        assert "coupled" in captured.err
        assert "verdict: schedulable" in captured.out

    def test_compose_rejects_multiple_files(
        self, dual_file, coupled_file, capsys
    ):
        assert (
            main(["analyze", dual_file, coupled_file, "--compose"]) == 2
        )
        assert "exactly one model" in capsys.readouterr().err

    def test_compose_all_modes_needs_a_modal_root(self, dual_file, capsys):
        """--compose composes with --all-modes now (one decomposition
        per steady mode); a modeless root is still an error."""
        assert (
            main(["analyze", dual_file, "--compose", "--all-modes"]) == 2
        )
        assert "declares no modes" in capsys.readouterr().err

    def test_compose_plan_decomposable(self, dual_file, capsys):
        assert main(["compose", "plan", dual_file]) == 0
        out = capsys.readouterr().out
        assert "islands: 2" in out

    def test_compose_plan_coupled(self, coupled_file, capsys):
        assert main(["compose", "plan", coupled_file]) == 0
        out = capsys.readouterr().out
        assert "fallback: monolithic" in out
        assert "[event]" in out

    def test_compose_with_cache(self, dual_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = [
            "analyze", dual_file, "--compose", "--jobs", "1",
            "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "[cached]" in capsys.readouterr().out

    def test_oracle_compose_command(self, capsys):
        assert main(["oracle", "compose", "--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "compose campaign: 4 case(s)" in out
        assert "disagreed: 0" in out

    def test_compose_trace_records_stages(self, dual_file, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        assert (
            main(
                [
                    "analyze", dual_file, "--compose", "--jobs", "1",
                    "--trace", trace,
                ]
            )
            == 0
        )
        from repro.obs import COMPOSE_STAGES, validate_file

        records = validate_file(trace)
        names = {
            r["name"] for r in records if r.get("type") == "span"
        }
        for stage in COMPOSE_STAGES:
            assert stage in names
