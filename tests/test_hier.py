"""Hierarchical (BDR-interface) analysis: unit and wiring tests.

Covers the interface math, the EDF/FP partition checks, the flattened
supply-aware simulation, ``analyze_hier`` end to end, and the wiring
into the portfolio (interface-aware tier gating), the translator
(refusal of vproc-bound threads), compose (grouping by host) and the
batch pool (``hier`` job kind, interface-sensitive cache keys).
"""

from fractions import Fraction

import pytest

from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import arinc_partitions, arinc_partitions_text
from repro.analysis import Verdict
from repro.batch.cache import cache_key
from repro.batch.jobs import AnalysisJob, execute_job
from repro.errors import HierError, TranslationError
from repro.hier import (
    BdrInterface,
    analyze_hier,
    check_partition,
    check_partition_edf,
    check_partition_fp,
    derive_interfaces,
    flattened_window,
    simulate_partition,
)
from repro.sched.taskmodel import PeriodicTask, TaskSet


def partitioned_builder(
    *,
    period=10,
    budget=5,
    scheduling="rate_monotonic",
    tasks=((4, 40), (8, 80)),
):
    """One host, one partition with the given server and (wcet, period)
    threads."""
    b = SystemBuilder("Part")
    cpu = b.processor("cpu", scheduling="rate_monotonic")
    part = b.virtual_processor(
        "part",
        period=period,
        budget=budget,
        scheduling=scheduling,
        processor=cpu,
    )
    for index, (wcet, task_period) in enumerate(tasks):
        b.thread(
            f"t{index}",
            dispatch="periodic",
            period=task_period,
            compute_time=wcet,
            deadline=task_period,
            processor=part,
        )
    return b


class TestBdrInterface:
    def test_periodic_server_derivation(self):
        iface = BdrInterface.from_server("p", 10, 4)
        assert iface.alpha == Fraction(2, 5)
        assert iface.delta == 12

    def test_sbf_zero_through_delta_then_linear(self):
        iface = BdrInterface.from_server("p", 10, 5)  # alpha 1/2, delta 10
        assert iface.sbf(10) == 0
        assert iface.sbf(12) == Fraction(1)
        assert iface.sbf(30) == Fraction(10)

    def test_full_supply_has_no_delay(self):
        iface = BdrInterface.from_server("p", 8, 8)
        assert iface.alpha == 1
        assert iface.delta == 0
        assert iface.sbf(5) == 5

    def test_degenerate_budget_rejected(self):
        with pytest.raises(HierError, match="out of range"):
            BdrInterface.from_server("p", 10, 0)
        with pytest.raises(HierError, match="out of range"):
            BdrInterface.from_server("p", 10, 11)

    def test_inflate_alpha_fault_keeps_honest_server(self):
        honest = BdrInterface.from_server("p", 10, 4)
        faulty = BdrInterface.from_server("p", 10, 4, fault="inflate-alpha")
        assert faulty.alpha == Fraction(1, 2)  # 2/5 * 5/4
        assert faulty.delta == honest.delta
        assert (faulty.period, faulty.budget) == (10, 4)

    def test_unknown_fault_rejected(self):
        with pytest.raises(HierError, match="unknown hier fault"):
            BdrInterface.from_server("p", 10, 4, fault="nope")

    def test_token_is_stable_cache_material(self):
        assert BdrInterface.from_server("p", 10, 5).token == "p:a1/2:d10"


class TestPartitionChecks:
    def test_fp_pass_under_half_supply(self):
        tasks = TaskSet(
            [PeriodicTask("a", 4, 40), PeriodicTask("b", 8, 80)]
        )
        iface = BdrInterface.from_server("p", 10, 5)
        check = check_partition_fp(tasks, iface, "rate")
        assert check.ok

    def test_fp_fail_when_demand_beats_supply(self):
        # One task needing 6 every 10 against alpha=1/2, delta=10:
        # sbf(10)=0 < 6, no earlier point helps.
        tasks = TaskSet([PeriodicTask("a", 6, 10)])
        iface = BdrInterface.from_server("p", 10, 5)
        check = check_partition_fp(tasks, iface, "rate")
        assert not check.ok
        assert "time demand exceeds sbf" in check.detail

    def test_edf_pass_and_fail(self):
        iface = BdrInterface.from_server("p", 20, 5)  # alpha 1/4, delta 30
        light = TaskSet(
            [PeriodicTask("a", 5, 100), PeriodicTask("b", 10, 200)]
        )
        assert check_partition_edf(light, iface).ok
        heavy = TaskSet([PeriodicTask("a", 60, 100)])
        check = check_partition_edf(heavy, iface)
        assert not check.ok
        assert "exceeds availability factor" in check.detail

    def test_edf_rejects_on_dbf_not_just_utilization(self):
        # U = 1/4 == alpha, but the tight deadline needs supply inside
        # the delay window: dbf(5)=5 > sbf(5)=0.
        iface = BdrInterface.from_server("p", 20, 5)
        tight = TaskSet([PeriodicTask("a", 5, 20, deadline=5)])
        check = check_partition_edf(tight, iface)
        assert not check.ok
        assert "dbf" in check.detail

    def test_dispatch_llf_has_no_analytic_test(self):
        tasks = TaskSet([PeriodicTask("a", 1, 40)])
        iface = BdrInterface.from_server("p", 10, 5)
        assert check_partition(tasks, iface, ordering=None) is None
        assert check_partition(
            tasks, iface, ordering=None, edf=True
        ).ok

    def test_empty_partition_trivially_schedulable(self):
        iface = BdrInterface.from_server("p", 10, 5)
        check = check_partition(TaskSet([]), iface, ordering="rate")
        assert check.ok


class TestFlattenedSimulation:
    def test_window_is_joint_repetition(self):
        tasks = TaskSet([PeriodicTask("a", 1, 8)])
        assert flattened_window(tasks, 10) == 2 * 40

    def test_supply_slots_match_bandwidth(self):
        tasks = TaskSet([PeriodicTask("a", 1, 10)])
        run = simulate_partition(tasks, 10, 4)
        assert run.supply_slots == run.horizon * 4 // 10

    def test_interface_pass_implies_simulation_pass(self):
        tasks = TaskSet(
            [PeriodicTask("a", 4, 40), PeriodicTask("b", 8, 80)]
        )
        iface = BdrInterface.from_server("p", 10, 5)
        assert check_partition_fp(tasks, iface, "rate").ok
        assert simulate_partition(tasks, 10, 5).schedulable

    def test_starved_partition_misses(self):
        # Demand 6/10 against a server granting 5/10.
        tasks = TaskSet([PeriodicTask("a", 6, 10)])
        run = simulate_partition(tasks, 10, 5)
        assert run.schedulable is False
        assert run.misses and run.misses[0][0] == "a"

    def test_window_above_cap_is_unknown(self):
        tasks = TaskSet([PeriodicTask("a", 1, 7)])
        run = simulate_partition(tasks, 11, 5, max_window=10)
        assert run.schedulable is None
        assert run.horizon > 10 and not run.misses

    def test_conservatism_gap_exists(self):
        # The end-of-period server meets a deadline the BDR bound
        # cannot promise: D=12 with delta=10 leaves sbf(12)=1 < 5, yet
        # the concrete server delivers its full 5-slot grant by t=10.
        tasks = TaskSet([PeriodicTask("a", 5, 40, deadline=12)])
        iface = BdrInterface.from_server("p", 10, 5)
        assert not check_partition_fp(tasks, iface, "rate").ok
        assert simulate_partition(tasks, 10, 5).schedulable


class TestAnalyzeHier:
    def test_gallery_model_decided_by_interface(self):
        result = analyze_hier(arinc_partitions())
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.decided_by == "hier"
        stats = result.exploration.stats
        assert stats.hier_partitions_checked == 2
        assert stats.hier_interface_hits == 2
        assert stats.hier_sim_escalations == 0
        assert any(
            "schedulable by interface" in line
            for line in result.tier_trail
        )

    def test_derive_interfaces_from_gallery(self):
        interfaces = derive_interfaces(arinc_partitions())
        assert interfaces["Avionics.flight"].alpha == Fraction(1, 2)
        assert interfaces["Avionics.display"].delta == 30

    def test_overloaded_partition_unschedulable(self):
        instance = partitioned_builder(
            budget=2, tasks=((4, 10),)
        ).instantiate()
        result = analyze_hier(instance)
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert result.exploration.stats.hier_sim_escalations == 1

    def test_conservative_partition_settled_by_escalation(self):
        instance = partitioned_builder(
            tasks=((6, 40),), period=10, budget=5
        ).instantiate()
        # Force interface conservatism with a tight deadline by hand:
        # analyze through the flattened path via an LLF partition.
        result = analyze_hier(instance)
        assert result.verdict is Verdict.SCHEDULABLE

    def test_window_cap_gives_unknown(self):
        # Interface check fails (demand 5 > sbf(11) = 9/7), and the
        # flattened window 2*lcm(11, 7) = 154 exceeds the cap.
        instance = partitioned_builder(
            period=7, budget=3, tasks=((5, 11),)
        ).instantiate()
        result = analyze_hier(instance, max_window=16)
        assert result.verdict is Verdict.UNKNOWN
        assert not result.exploration.completed

    def test_fault_injection_flips_a_starved_partition(self):
        # Demand 13/20 sits above honest alpha=3/5 but below the
        # inflated 3/4, and the tasks are deadline-loose enough that
        # only utilization separates the verdicts... checked by the
        # oracle campaign at scale; here we just pin that the fault
        # reaches the derivation.
        faulty = derive_interfaces(
            partitioned_builder().instantiate(), fault="inflate-alpha"
        )
        assert faulty["Part.part"].alpha == Fraction(5, 8)

    def test_unpartitioned_model_refused(self):
        b = SystemBuilder("Flat")
        cpu = b.processor("cpu")
        b.thread(
            "t",
            dispatch="periodic",
            period=10,
            compute_time=1,
            deadline=10,
            processor=cpu,
        )
        with pytest.raises(HierError, match="no thread-bearing virtual"):
            analyze_hier(b.instantiate())

    def test_host_must_honour_servers(self):
        # Two servers each wanting 6/10 oversubscribe the host.
        b = SystemBuilder("Over")
        cpu = b.processor("cpu")
        for index in range(2):
            part = b.virtual_processor(
                f"part{index}", period=10, budget=6, processor=cpu
            )
            b.thread(
                f"t{index}",
                dispatch="periodic",
                period=40,
                compute_time=1,
                deadline=40,
                processor=part,
            )
        result = analyze_hier(b.instantiate())
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert any("host" in line for line in result.tier_trail)


class TestWiring:
    def test_translator_refuses_vproc_bound_threads(self):
        from repro.translate import translate

        with pytest.raises(TranslationError, match="virtual processor"):
            translate(arinc_partitions())

    def test_portfolio_decides_partitions_with_hier_tier(self):
        from repro.portfolio import analyze_portfolio

        result = analyze_portfolio(arinc_partitions())
        assert result.verdict is Verdict.SCHEDULABLE
        assert any("hier:" in line for line in result.tier_trail)

    def test_full_supply_tiers_never_see_partition_units(self):
        from repro.portfolio.context import build_context
        from repro.portfolio.tiers import default_tiers

        context = build_context(arinc_partitions())
        partition_units = [
            u for u in context.units if u.interface is not None
        ]
        assert partition_units
        for tier in default_tiers():
            if tier.interface_aware:
                continue
            for unit in partition_units:
                # The analyzer's screen() filter enforces this pairing;
                # the attribute is the contract it filters on.
                assert not tier.interface_aware

    def test_compose_routes_partitioned_fallback_through_hier(self):
        from repro.compose import analyze_compositionally

        result = analyze_compositionally(arinc_partitions())
        assert result.mode == "monolithic-fallback"
        assert result.verdict is Verdict.SCHEDULABLE

    def test_host_processor_resolves_through_partition(self):
        instance = arinc_partitions()
        threads = {t.name: t for t in instance.threads()}
        control = threads["control_law"]
        assert control.bound_processor.name == "flight"
        assert control.host_processor.name == "core"
        monitor = threads["health_monitor"]
        assert monitor.host_processor is monitor.bound_processor


class TestBatchHier:
    def test_hier_job_executes(self):
        job = AnalysisJob.from_hier(arinc_partitions_text())
        result = execute_job(job)
        assert result.verdict == "schedulable"
        assert result.stats["hier_interface_hits"] == 2

    def test_cache_key_tracks_interface_parameters(self):
        source = arinc_partitions_text()
        base = cache_key(AnalysisJob.from_hier(source))
        tweaked = source.replace(
            "Execution_Time => 5 ms;", "Execution_Time => 4 ms;", 1
        )
        assert cache_key(AnalysisJob.from_hier(tweaked)) != base
        assert (
            cache_key(
                AnalysisJob.from_hier(source, fault="inflate-alpha")
            )
            != base
        )

    def test_faulted_job_overpromises(self):
        b = partitioned_builder(budget=4, tasks=((13, 40), (13, 41)))
        # U = 13/40 + 13/41 ~ 0.642 > honest alpha 0.4: unschedulable.
        from repro.aadl.printer import format_model

        source = format_model(b.declarative())
        honest = execute_job(AnalysisJob.from_hier(source))
        assert honest.verdict == "unschedulable"
