"""Tests of workload generation (UUniFast and system generators)."""

import numpy as np
import pytest

from repro.errors import SchedError
from repro.workloads import (
    chain_system,
    integer_task_set,
    multiprocessor_system,
    random_periodic_system,
    task_set_to_system,
    uunifast,
)
from repro.sched import PeriodicTask, TaskSet


class TestUUniFast:
    def test_sums_to_target(self):
        rng = np.random.default_rng(42)
        for n in (1, 2, 5, 20):
            us = uunifast(n, 0.7, rng)
            assert len(us) == n
            assert sum(us) == pytest.approx(0.7)

    def test_all_positive(self):
        rng = np.random.default_rng(7)
        assert all(u > 0 for u in uunifast(10, 0.9, rng))

    def test_reproducible_with_seed(self):
        a = uunifast(5, 0.5, np.random.default_rng(1))
        b = uunifast(5, 0.5, np.random.default_rng(1))
        assert a == b

    def test_rejects_bad_args(self):
        with pytest.raises(SchedError):
            uunifast(0, 0.5)
        with pytest.raises(SchedError):
            uunifast(3, -0.1)


class TestIntegerTaskSet:
    def test_basic_shape(self):
        rng = np.random.default_rng(3)
        tasks = integer_task_set(5, 0.6, rng=rng)
        assert len(tasks) == 5
        for task in tasks:
            assert 1 <= task.wcet <= task.period
            assert task.deadline == task.period

    def test_utilization_roughly_tracks_target(self):
        rng = np.random.default_rng(11)
        samples = [
            integer_task_set(4, 0.6, rng=rng).utilization for _ in range(30)
        ]
        assert 0.4 < float(np.mean(samples)) < 0.8

    def test_custom_periods(self):
        tasks = integer_task_set(
            3, 0.5, periods=(10,), rng=np.random.default_rng(0)
        )
        assert all(t.period == 10 for t in tasks)


class TestSystemGenerators:
    def test_task_set_to_system_roundtrip(self):
        tasks = TaskSet(
            [PeriodicTask("x", 1, 4, bcet=1), PeriodicTask("y", 2, 8)]
        )
        inst = task_set_to_system(tasks)
        assert {t.name for t in inst.threads()} == {"x", "y"}
        from repro.sched import extract_task_set

        extracted = extract_task_set(inst, inst.processors()[0])
        by_name = {t.name.split(".")[-1]: t for t in extracted}
        assert by_name["x"].wcet == 1 and by_name["y"].period == 8

    def test_random_periodic_system_validates(self):
        inst = random_periodic_system(
            3, 0.5, rng=np.random.default_rng(5)
        )
        assert len(inst.threads()) == 3
        assert all(t.bound_processor is not None for t in inst.threads())

    def test_chain_system_shape(self):
        inst = chain_system(3)
        assert len(inst.threads()) == 4  # source + 3 stages
        assert len(inst.connections) == 3

    def test_chain_system_analyzable(self):
        from repro.analysis import analyze_model, Verdict

        result = analyze_model(chain_system(2), max_states=200_000)
        assert result.verdict is not Verdict.UNKNOWN

    def test_multiprocessor_system(self):
        inst = multiprocessor_system(
            2, 2, rng=np.random.default_rng(9)
        )
        assert len(inst.processors()) == 3  # 2 + sink cpu
        bus_conns = [c for c in inst.connections if c.buses]
        assert len(bus_conns) == 2

    def test_multiprocessor_without_bus(self):
        inst = multiprocessor_system(
            2, 1, shared_bus=False, rng=np.random.default_rng(9)
        )
        assert inst.buses() == []
