"""Tests for the parallel batch subsystem and the verdict cache."""

import json
import os

import pytest

from repro.aadl.gallery import cruise_control_text
from repro.batch import (
    AnalysisJob,
    JobResult,
    VerdictCache,
    cache_key,
    execute_job,
    resolve_cache,
    resolve_workers,
    run_batch,
    utilization_sweep_jobs,
)
from repro.batch.cache import CACHE_SCHEMA_VERSION
from repro.cli import main
from repro.engine.stats import EngineStats
from repro.errors import BatchError
from repro.oracle.case import OracleCase


@pytest.fixture
def cc_job():
    return AnalysisJob.from_aadl(cruise_control_text(), job_id="cc")


@pytest.fixture
def case_jobs():
    cases = [
        OracleCase.generate("uniform", seed, n=2, utilization=0.5, scheduling="RMS")
        for seed in range(4)
    ]
    return [
        AnalysisJob.from_case(c, job_id=c.case_id, max_states=50_000)
        for c in cases
    ]


class TestAnalysisJob:
    def test_roundtrip(self, cc_job):
        clone = AnalysisJob.from_dict(cc_job.to_dict())
        assert clone.job_id == cc_job.job_id
        assert clone.kind == cc_job.kind
        assert clone.payload == cc_job.payload
        assert clone.options == cc_job.options

    def test_unknown_kind_rejected(self):
        with pytest.raises(BatchError):
            AnalysisJob(job_id="x", kind="nope", payload={})

    def test_missing_fields_rejected(self):
        with pytest.raises(BatchError):
            AnalysisJob.from_dict({"job_id": "x"})

    def test_from_file_aadl(self, tmp_path):
        path = tmp_path / "cc.aadl"
        path.write_text(cruise_control_text())
        job = AnalysisJob.from_file(str(path))
        assert job.kind == "aadl"
        assert job.job_id == "cc.aadl"

    def test_from_file_case_json(self, tmp_path):
        case = OracleCase.generate("uniform", 3, n=2, utilization=0.4, scheduling="RMS")
        path = tmp_path / "case.json"
        path.write_text(json.dumps(case.to_dict()))
        job = AnalysisJob.from_file(str(path))
        assert job.kind == "case"
        assert job.payload["case"]["case_id"] == case.case_id

    def test_execute_error_is_captured(self):
        job = AnalysisJob.from_aadl("this is not AADL", job_id="bad")
        result = execute_job(job)
        assert result.verdict == "error"
        assert result.error


class TestCacheKey:
    def test_formatting_cannot_split_aadl_keys(self):
        source = cruise_control_text()
        reformatted = "-- a leading comment\n" + source.replace(
            "\n", "\n  \n", 1
        )
        a = cache_key(AnalysisJob.from_aadl(source, job_id="a"))
        b = cache_key(AnalysisJob.from_aadl(reformatted, job_id="b"))
        assert a == b

    def test_provenance_cannot_split_case_keys(self):
        case = OracleCase.generate("uniform", 7, n=2, utilization=0.5, scheduling="RMS")
        data = case.to_dict()
        relabeled = dict(data, case_id="totally-different", seed=999)
        a = cache_key(AnalysisJob.from_case(data))
        b = cache_key(AnalysisJob.from_case(relabeled))
        assert a == b

    def test_options_split_keys(self):
        source = cruise_control_text()
        a = cache_key(AnalysisJob.from_aadl(source, max_states=10))
        b = cache_key(AnalysisJob.from_aadl(source, max_states=20))
        assert a != b

    def test_fault_splits_case_keys(self):
        case = OracleCase.generate("uniform", 7, n=2, utilization=0.5, scheduling="RMS")
        a = cache_key(AnalysisJob.from_case(case.to_dict()))
        b = cache_key(
            AnalysisJob.from_case(case.to_dict(), fault="drop_preemption")
        )
        assert a != b


class TestVerdictCache:
    def test_miss_then_hit(self, tmp_path):
        store = VerdictCache(str(tmp_path / "cache"))
        assert store.get("ab" * 32) is None
        store.put("ab" * 32, {"verdict": "schedulable"}, job_id="x")
        assert store.get("ab" * 32) == {"verdict": "schedulable"}
        assert store.hits == 1 and store.misses == 1

    def test_schema_mismatch_is_miss(self, tmp_path):
        store = VerdictCache(str(tmp_path / "cache"))
        path = store.put("cd" * 32, {"verdict": "schedulable"})
        entry = json.loads(open(path).read())
        entry["schema_version"] = CACHE_SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert store.get("cd" * 32) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        store = VerdictCache(str(tmp_path / "cache"))
        path = store.put("ef" * 32, {"verdict": "schedulable"})
        with open(path, "w") as handle:
            handle.write("{not json")
        assert store.get("ef" * 32) is None

    def test_clear(self, tmp_path):
        store = VerdictCache(str(tmp_path / "cache"))
        store.put("ab" * 32, {"verdict": "schedulable"})
        store.put("cd" * 32, {"verdict": "unschedulable"})
        assert len(store) == 2
        assert store.size_bytes() > 0
        assert store.clear() == 2
        assert len(store) == 0

    def test_resolve_cache_specs(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        store = VerdictCache(str(tmp_path))
        assert resolve_cache(store) is store
        assert resolve_cache(str(tmp_path)).directory == str(tmp_path)
        with pytest.raises(BatchError):
            resolve_cache(42)


class TestRunBatch:
    def test_workers_resolution(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(3) == 3
        with pytest.raises(BatchError):
            resolve_workers(0)

    def test_jobs_1_and_jobs_2_identical(self, case_jobs):
        serial = run_batch(case_jobs, workers=1)
        pooled = run_batch(case_jobs, workers=2)
        assert [r.verdict for r in serial.results] == [
            r.verdict for r in pooled.results
        ]
        assert [r.states for r in serial.results] == [
            r.states for r in pooled.results
        ]
        assert [r.job_id for r in serial.results] == [
            r.job_id for r in pooled.results
        ]

    def test_warm_cache_serves_every_job(self, case_jobs, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_batch(case_jobs, workers=1, cache=cache_dir)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(case_jobs)
        warm = run_batch(case_jobs, workers=1, cache=cache_dir)
        assert warm.cache_hits == len(case_jobs)
        assert warm.cache_misses == 0
        assert all(r.cached for r in warm.results)
        assert [r.verdict for r in warm.results] == [
            r.verdict for r in cold.results
        ]
        # Cached results carry no fresh engine work.
        assert warm.stats.states == 0

    def test_cache_shared_across_runs_reports_deltas(self, case_jobs, tmp_path):
        store = VerdictCache(str(tmp_path / "cache"))
        run_batch(case_jobs, workers=1, cache=store)
        warm = run_batch(case_jobs, workers=1, cache=store)
        assert warm.cache_hits == len(case_jobs)
        assert warm.cache_misses == 0

    def test_error_job_does_not_abort_batch(self, cc_job):
        bad = AnalysisJob.from_aadl("garbage", job_id="bad")
        report = run_batch([cc_job, bad], workers=1)
        assert report.results[0].verdict == "schedulable"
        assert report.results[1].verdict == "error"
        assert report.exit_code() == 2

    def test_error_results_not_cached(self, tmp_path):
        bad = AnalysisJob.from_aadl("garbage", job_id="bad")
        store = VerdictCache(str(tmp_path / "cache"))
        run_batch([bad], workers=1, cache=store)
        assert len(store) == 0

    def test_exit_code_priority(self, cc_job):
        report = run_batch([cc_job], workers=1)
        assert report.exit_code() == 0
        truncated = AnalysisJob.from_aadl(
            cruise_control_text(), job_id="tiny", max_states=10
        )
        assert run_batch([truncated], workers=1).exit_code() == 3
        over = AnalysisJob.from_aadl(
            cruise_control_text(overloaded=True), job_id="over"
        )
        assert run_batch([over, truncated], workers=1).exit_code() == 1

    def test_progress_called_per_job(self, case_jobs):
        seen = []
        run_batch(
            case_jobs,
            workers=1,
            progress=lambda done, total, result: seen.append(
                (done, total, result.job_id)
            ),
        )
        assert [done for done, _, _ in seen] == [1, 2, 3, 4]

    def test_aggregate_stats_sum_over_jobs(self, case_jobs):
        report = run_batch(case_jobs, workers=1)
        per_job = [
            EngineStats.from_dict(r.stats)
            for r in report.results
            if r.stats
        ]
        assert report.stats.states == sum(s.states for s in per_job)
        assert report.stats.transitions == sum(
            s.transitions for s in per_job
        )

    def test_report_format_mentions_cache(self, case_jobs, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_batch(case_jobs, workers=1, cache=cache_dir)
        warm = run_batch(case_jobs, workers=1, cache=cache_dir)
        text = warm.format(show_stats=True)
        assert "verdict cache: 4 hits / 0 misses" in text
        assert "(cached)" in text


class TestEngineStatsBatchSupport:
    def test_from_dict_roundtrip(self):
        stats = EngineStats.from_dict(
            {
                "strategy": "bfs",
                "states": 10,
                "transitions": 20,
                "expanded": 9,
                "elapsed": 0.5,
                "frontier_peak": 4,
                "cache_hits": 3,
                "cache_misses": 7,
                "verdict_cache_hits": 1,
                "verdict_cache_misses": 2,
            }
        )
        clone = EngineStats.from_dict(stats.as_dict())
        assert clone.as_dict() == stats.as_dict()
        assert clone.verdict_cache_hits == 1
        assert clone.verdict_cache_misses == 2

    def test_aggregate_sums_and_peaks(self):
        a = EngineStats.from_dict(
            {"strategy": "bfs", "states": 5, "transitions": 8,
             "expanded": 5, "elapsed": 0.1, "frontier_peak": 3}
        )
        b = EngineStats.from_dict(
            {"strategy": "bfs", "states": 7, "transitions": 2,
             "expanded": 6, "elapsed": 0.2, "frontier_peak": 9}
        )
        total = EngineStats.aggregate([a, None, b])
        assert total.states == 12
        assert total.transitions == 10
        assert total.frontier_peak == 9
        assert total.elapsed == pytest.approx(0.3)

    def test_format_includes_verdict_cache_line(self):
        stats = EngineStats.from_dict(
            {"strategy": "aggregate", "states": 1, "transitions": 1,
             "expanded": 1, "elapsed": 0.1, "frontier_peak": 1,
             "verdict_cache_hits": 3, "verdict_cache_misses": 1}
        )
        assert "verdict cache: 3 hits / 1 misses" in stats.format()


class TestSweeps:
    def test_sweep_jobs_are_deterministic(self):
        a = utilization_sweep_jobs(2, [0.4, 0.8], base_seed=5)
        b = utilization_sweep_jobs(2, [0.4, 0.8], base_seed=5)
        assert [cache_key(j) for j in a] == [cache_key(j) for j in b]
        assert [j.job_id for j in a] == ["uniform-u0.400", "uniform-u0.800"]

    def test_sweep_runs_through_batch(self):
        jobs = utilization_sweep_jobs(
            2, [0.4], base_seed=5, max_states=50_000
        )
        report = run_batch(jobs, workers=1)
        assert report.results[0].verdict in (
            "schedulable", "unschedulable", "unknown",
        )
        assert report.results[0].classification is not None


class TestBatchCli:
    @pytest.fixture
    def cc_file(self, tmp_path):
        path = tmp_path / "cc.aadl"
        path.write_text(cruise_control_text())
        return str(path)

    def test_batch_run_two_files(self, cc_file, tmp_path, capsys):
        over = tmp_path / "over.aadl"
        over.write_text(cruise_control_text(overloaded=True))
        assert main(["batch", "run", cc_file, str(over), "--jobs", "2"]) == 1
        out = capsys.readouterr().out
        assert "2 job(s)" in out
        assert "1 schedulable, 1 unschedulable" in out

    def test_analyze_multi_file_batches(self, cc_file, capsys):
        assert main(["analyze", cc_file, cc_file, "--jobs", "1"]) == 0
        assert "verdicts: 2 schedulable" in capsys.readouterr().out

    def test_cli_cache_roundtrip(self, cc_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["batch", "run", cc_file, "--cache-dir", cache_dir]
        ) == 0
        assert main(
            ["batch", "run", cc_file, "--cache-dir", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "verdict cache: 1 hits / 0 misses" in out
        assert main(["batch", "cache", "--dir", cache_dir]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(
            ["batch", "cache", "--dir", cache_dir, "--clear"]
        ) == 0
        assert "removed 1" in capsys.readouterr().out


class TestCampaignBatchIntegration:
    def test_campaign_jobs_equivalence(self, tmp_path):
        from repro.oracle import run_campaign

        kwargs = dict(
            seeds=6,
            profile="smoke",
            base_seed=0,
            artifacts_dir=str(tmp_path / "art"),
        )
        serial = run_campaign(jobs=1, **kwargs)
        pooled = run_campaign(jobs=2, **kwargs)
        assert [o.verdict for o in serial.outcomes] == [
            o.verdict for o in pooled.outcomes
        ]
        assert [o.classification.status for o in serial.outcomes] == [
            o.classification.status for o in pooled.outcomes
        ]

    def test_campaign_cache_reuse(self, tmp_path):
        from repro.oracle import run_campaign

        kwargs = dict(
            seeds=5,
            profile="smoke",
            base_seed=0,
            artifacts_dir=str(tmp_path / "art"),
            cache=str(tmp_path / "cache"),
            jobs=1,
        )
        cold = run_campaign(**kwargs)
        assert cold.totals["verdict_cache_misses"] == 5
        assert cold.totals["runs"] == 5
        warm = run_campaign(**kwargs)
        assert warm.totals["verdict_cache_hits"] == 5
        assert warm.totals["runs"] == 0
        assert [o.verdict for o in warm.outcomes] == [
            o.verdict for o in cold.outcomes
        ]
        assert "verdict cache: 5 hits" in warm.format()


class TestAggregateWallClock:
    """The honest-denominator fix: ``elapsed`` stays the additive
    CPU-time sum, ``wall_elapsed`` is the pool's own wall clock, and
    throughput is computed from the wall clock."""

    def _pair(self):
        a = EngineStats.from_dict(
            {"strategy": "bfs", "states": 600, "transitions": 8,
             "expanded": 5, "elapsed": 2.0, "frontier_peak": 3}
        )
        b = EngineStats.from_dict(
            {"strategy": "bfs", "states": 400, "transitions": 2,
             "expanded": 6, "elapsed": 2.0, "frontier_peak": 9}
        )
        return a, b

    def test_wall_elapsed_distinct_from_cpu_sum(self):
        total = EngineStats.aggregate(self._pair(), wall_elapsed=2.5)
        assert total.elapsed == pytest.approx(4.0)
        assert total.wall_elapsed == pytest.approx(2.5)

    def test_throughput_uses_wall_clock(self):
        total = EngineStats.aggregate(self._pair(), wall_elapsed=2.5)
        # 1000 states / 2.5s wall, not / 4.0s of summed CPU time.
        assert total.states_per_second == pytest.approx(400.0)

    def test_wall_defaults_to_cpu_sum_when_serial(self):
        total = EngineStats.aggregate(self._pair())
        assert total.wall_elapsed == pytest.approx(total.elapsed)

    def test_format_shows_both_clocks_when_distinct(self):
        total = EngineStats.aggregate(self._pair(), wall_elapsed=2.5)
        text = total.format()
        assert "4.000s cpu" in text
        assert "2.500s wall" in text

    def test_format_single_clock_when_equal(self):
        total = EngineStats.aggregate(self._pair())
        assert "wall" not in total.format()

    def test_wall_elapsed_round_trips_through_dict(self):
        total = EngineStats.aggregate(self._pair(), wall_elapsed=2.5)
        clone = EngineStats.from_dict(total.as_dict())
        assert clone.wall_elapsed == pytest.approx(2.5)
        assert clone.elapsed == pytest.approx(4.0)

    def test_parallel_batch_reports_wall_clock(self, tmp_path):
        # Two *distinct* models: identical jobs would dedupe in-batch
        # and leave only one actual execution.
        jobs = [
            AnalysisJob.from_aadl(
                cruise_control_text(overloaded=bool(i)), job_id=f"j{i}"
            )
            for i in range(2)
        ]
        report = run_batch(jobs, workers=2)
        assert report.stats.wall_elapsed == pytest.approx(
            report.elapsed
        )
        # Two jobs ran, so summed CPU time exceeds either job alone.
        per_job = [r.elapsed for r in report.results]
        assert report.stats.elapsed == pytest.approx(
            sum(per_job), rel=0.2
        )


class TestModalJobs:
    def _source(self):
        from repro.aadl.gallery import fault_recovery_text

        return fault_recovery_text()

    def test_from_modal_rejects_unknown_protocol(self):
        with pytest.raises(BatchError):
            AnalysisJob.from_modal(self._source(), protocol="eventual")

    def test_protocol_is_cache_key_material(self):
        source = self._source()
        sync = AnalysisJob.from_modal(source, protocol="synchronous")
        asyn = AnalysisJob.from_modal(source, protocol="asynchronous")
        assert cache_key(sync) != cache_key(asyn)

    def test_mode_pin_is_cache_key_material(self):
        source = self._source()
        plain = AnalysisJob.from_aadl(source, root="Plant.impl")
        pinned = AnalysisJob.from_aadl(
            source, root="Plant.impl", mode="error"
        )
        other = AnalysisJob.from_aadl(
            source, root="Plant.impl", mode="recovery"
        )
        keys = {cache_key(plain), cache_key(pinned), cache_key(other)}
        assert len(keys) == 3

    def test_modal_job_runs_and_caches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        job = AnalysisJob.from_modal(
            self._source(), root="Plant.impl",
            protocol="asynchronous",
        )
        cold = run_batch([job], workers=1, cache=cache_dir)
        assert cold.results[0].verdict == "schedulable"
        assert "transition" in cold.results[0].rendered
        warm = run_batch([job], workers=1, cache=cache_dir)
        assert warm.results[0].cached

    def test_from_file_routes_modal_options(self, tmp_path):
        path = tmp_path / "plant.aadl"
        path.write_text(self._source())
        job = AnalysisJob.from_file(
            str(path), modal=True, protocol="asynchronous"
        )
        assert job.kind == "modal"
        assert job.options["protocol"] == "asynchronous"
