"""Tests of the top-level analysis pipeline and trace raising."""

import pytest

from repro.aadl import parse_model
from repro.aadl.gallery import (
    aperiodic_worker,
    cruise_control,
    cruise_control_text,
    sporadic_consumer,
    two_periodic_threads,
)
from repro.aadl.properties import OverflowHandlingProtocol, ms
from repro.analysis import (
    AadlScenario,
    Verdict,
    analyze_model,
    raise_trace,
    render_timeline,
)
from repro.analysis.raising import PREEMPTED, RUNNING, WAITING
from repro.versa import find_deadlock


class TestVerdicts:
    def test_schedulable(self):
        result = analyze_model(two_periodic_threads(schedulable=True))
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.schedulable is True
        assert result.scenario is None

    def test_unschedulable_with_scenario(self):
        result = analyze_model(two_periodic_threads(schedulable=False))
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert result.schedulable is False
        assert isinstance(result.scenario, AadlScenario)

    def test_unknown_on_budget(self):
        result = analyze_model(cruise_control(), max_states=10)
        assert result.verdict is Verdict.UNKNOWN
        assert result.schedulable is None

    def test_declarative_model_accepted(self):
        model = parse_model(cruise_control_text())
        result = analyze_model(model, root_impl="CruiseControl.impl")
        assert result.verdict is Verdict.SCHEDULABLE

    def test_declarative_requires_root_impl(self):
        model = parse_model(cruise_control_text())
        with pytest.raises(ValueError):
            analyze_model(model)

    def test_quantum_override(self):
        result = analyze_model(cruise_control(), quantum=ms(5))
        assert result.translation.quantizer.quantum == ms(5)
        assert result.verdict is Verdict.SCHEDULABLE

    def test_format_output(self):
        result = analyze_model(two_periodic_threads(schedulable=False))
        text = result.format()
        assert "unschedulable" in text
        assert "deadline_miss" in text or "DEADLINE MISS" in text


class TestScenarioRaising:
    @pytest.fixture
    def failing(self):
        return analyze_model(two_periodic_threads(schedulable=False))

    def test_miss_attributed_to_starved_thread(self, failing):
        assert failing.scenario.misses == ["TwoThreads.slow"]

    def test_dispatch_events_at_time_zero(self, failing):
        dispatches = [
            e for e in failing.scenario.events if e.kind == "dispatch"
        ]
        assert {e.element for e in dispatches if e.time == 0} == {
            "TwoThreads.fast",
            "TwoThreads.slow",
        }

    def test_completions_attributed(self, failing):
        completions = [
            e for e in failing.scenario.events if e.kind == "complete"
        ]
        assert all(e.element == "TwoThreads.fast" for e in completions)

    def test_activity_rows_cover_duration(self, failing):
        scenario = failing.scenario
        for qual, row in scenario.activity.items():
            assert len(row) == scenario.duration

    def test_high_priority_thread_runs_low_preempted(self, failing):
        activity = failing.scenario.activity
        # At t=0 the fast (high-priority) thread runs; slow is preempted.
        assert activity["TwoThreads.fast"][0] == RUNNING
        assert activity["TwoThreads.slow"][0] == PREEMPTED

    def test_timeline_renders(self, failing):
        text = render_timeline(failing.scenario)
        assert "TwoThreads.fast" in text
        assert "#" in text and "." in text

    def test_duration_matches_deadline(self, failing):
        # The slow thread's deadline is 8 quanta; BFS finds the miss there.
        assert failing.scenario.duration == 8


class TestQueueOverflowScenario:
    def test_error_overflow_detected(self):
        inst = sporadic_consumer(
            queue_size=1,
            overflow=OverflowHandlingProtocol.ERROR,
            producer_period=2,
            min_separation=8,
        )
        result = analyze_model(inst)
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert result.scenario.overflows
        assert any(
            e.kind == "queue_overflow" for e in result.scenario.events
        )

    def test_drop_overflow_is_schedulable(self):
        inst = sporadic_consumer(
            queue_size=1,
            overflow=OverflowHandlingProtocol.DROP_NEWEST,
            producer_period=2,
            min_separation=8,
        )
        result = analyze_model(inst)
        assert result.verdict is Verdict.SCHEDULABLE


class TestEventDrivenScenarios:
    def test_aperiodic_enqueue_dequeue_events(self):
        """An aperiodic worker preempted by its own producer misses its
        deadline; the scenario shows the dispatching event chain."""
        from repro.aadl.builder import SystemBuilder
        from repro.aadl.properties import DispatchProtocol, SchedulingProtocol

        b = SystemBuilder("Ap")
        cpu = b.processor(
            "cpu", scheduling=SchedulingProtocol.DEADLINE_MONOTONIC
        )
        producer = b.thread(
            "producer",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(3),
            compute_time=(ms(2), ms(2)),
            deadline=ms(2),
            processor=cpu,
        )
        producer.out_event_port("go")
        worker = b.thread(
            "worker",
            dispatch=DispatchProtocol.APERIODIC,
            compute_time=(ms(2), ms(2)),
            deadline=ms(2),
            processor=cpu,
        )
        worker.in_event_port("go")
        b.connect(producer, "go", worker, "go")
        result = analyze_model(b.instantiate())
        assert result.verdict is Verdict.UNSCHEDULABLE
        kinds = {e.kind for e in result.scenario.events}
        assert "enqueue" in kinds
        assert "dequeue" in kinds
        assert "deadline_miss" in kinds

    def test_aperiodic_worker_gallery_schedulable(self):
        result = analyze_model(aperiodic_worker())
        assert result.verdict is Verdict.SCHEDULABLE

    def test_cruise_control_overloaded_scenario(self):
        from repro.aadl.gallery import cruise_control

        result = analyze_model(cruise_control(overloaded=True))
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert any(
            "cruise" in miss for miss in result.scenario.misses
        )


class TestClassify:
    """Unit tests of the per-quantum activity classifier.

    ``_classify`` sees the skeleton state of one thread before and
    after a timed action: ``(phase, params)`` tuples, with the
    remaining-work counter first in ``params`` for compute states.
    """

    def test_final_compute_step_is_running(self):
        # A thread whose compute state transitions straight to finish
        # spent that quantum executing -- the last quantum of its
        # budget, not a preemption.
        from repro.analysis.raising import _classify

        assert _classify(("compute", (1, 5)), ("finish", ())) == RUNNING

    def test_stalled_compute_args_mean_preempted(self):
        # Dispatched but not holding the CPU: the remaining-work
        # counter did not advance across the quantum.
        from repro.analysis.raising import _classify

        assert (
            _classify(("compute", (3, 5)), ("compute", (3, 5)))
            == PREEMPTED
        )

    def test_advancing_compute_args_mean_running(self):
        from repro.analysis.raising import _classify

        assert (
            _classify(("compute", (3, 5)), ("compute", (4, 5)))
            == RUNNING
        )

    def test_thread_vanishing_mid_handshake_waits(self):
        # Mid-handshake the thread process is an event-prefix chain,
        # which carries no skeleton state: ``after`` comes back None.
        # That must read as waiting, never as a crash or a phantom run.
        from repro.analysis.raising import _classify

        assert _classify(("compute", (2, 5)), None) == WAITING

    def test_never_dispatched_thread_waits(self):
        from repro.analysis.raising import _classify

        assert _classify(None, None) == WAITING
        assert _classify(None, ("compute", (0, 5))) == WAITING

    def test_await_and_finish_states_wait(self):
        from repro.analysis.raising import _classify

        assert _classify(("await", ()), ("await", ())) == WAITING
        assert _classify(("finish", ()), ("await", ())) == WAITING

    def test_compute_without_args_defaults_to_waiting(self):
        # Degenerate zero-budget compute states carry no counter to
        # compare; the classifier must not crash on the empty tuple.
        from repro.analysis.raising import _classify

        assert _classify(("compute", ()), ("compute", ())) == WAITING


class TestTimelineRuler:
    def _scenario(self, duration, events=()):
        from repro.analysis.raising import ScenarioEvent

        return AadlScenario(
            [ScenarioEvent(*args) for args in events],
            {"Sys.thread": [RUNNING] * duration},
            duration,
            False,
            [],
            [],
        )

    def test_short_timeline_has_single_ruler_row(self):
        text = render_timeline(self._scenario(8))
        rows = text.splitlines()
        assert rows[0].strip() == "01234567"
        assert "Sys.thread" in rows[1]

    def test_long_timeline_gets_tens_row(self):
        text = render_timeline(self._scenario(23))
        rows = text.splitlines()
        # Tens row: digits only at multiples of ten, read vertically
        # with the ones row below it (t=12 reads "1" over "2").
        assert rows[0].strip() == "0         1         2"
        assert rows[1].strip() == "01234567890123456789012"
        tens, ones = rows[0], rows[1]
        # Columns align: the tens digit "1" sits over the ones "0" of t=10.
        assert ones[tens.index("1")] == "0"

    def test_queue_overflow_marked_under_chart(self):
        text = render_timeline(
            self._scenario(
                5, events=[(3, "queue_overflow", "Sys.conn")]
            )
        )
        assert "t=3" in text
        assert "queue_overflow" in text
        assert "Sys.conn" in text
