"""Tests of the unified exploration engine (repro.engine).

Covers the ISSUE-specified edge cases: every budget dimension under both
raise and truncate policies, target hits on the initial state, deadlocks
at the budget boundary, BFS/DFS discovered-set equivalence on the paper's
Fig. 2 example, the explicit transition cache, and observer hooks.
"""

import warnings

import pytest

from repro.errors import AnalysisError, ExplorationLimitError
from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    guard,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    send,
)
from repro.acsr.expressions import var
from repro.engine import (
    Budget,
    BreadthFirst,
    DepthFirst,
    IncompleteExplorationWarning,
    ProgressObserver,
    RandomWalk,
    RecordingObserver,
    SuccessorProvider,
    TransitionCache,
    explore,
    make_strategy,
)


@pytest.fixture
def counter_env():
    """Count(n): n goes 0..4 then deadlocks."""
    env = ProcessEnv()
    n = var("n")
    env.define(
        "Count",
        ("n",),
        guard(n < 4, action({"cpu": 1}) >> proc("Count", n + 1)),
    )
    return env


@pytest.fixture
def counter_system(counter_env):
    return counter_env.close(proc("Count", 0))


def fig2_system():
    """The paper's Fig. 2 'simple process' example (with idling)."""
    env = ProcessEnv()
    step2 = action({"cpu": 1, "bus": 1}) >> send("done", 1) >> proc("Simple")
    first = action({"cpu": 1}) >> proc("Step2")
    env.define("Simple", (), choice(first, idle().then(proc("Simple"))))
    env.define("Step2", (), choice(step2, idle().then(proc("Step2"))))
    env.define(
        "Recv",
        (),
        choice(recv("done", 1).then(proc("Recv")), idle().then(proc("Recv"))),
    )
    return env.close(
        restrict(parallel(proc("Simple"), proc("Recv")), ["done"])
    )


class TestBudgets:
    def test_state_budget_raises(self, counter_system):
        with pytest.raises(ExplorationLimitError) as excinfo:
            explore(counter_system, budget=Budget(max_states=2))
        assert excinfo.value.states_explored == 2

    def test_state_budget_truncates(self, counter_system):
        result = explore(
            counter_system,
            budget=Budget(max_states=2, on_limit="truncate"),
        )
        assert result.num_states == 2
        assert not result.completed
        assert result.limit_hit == "states"
        assert result.stats.limit_hit == "states"

    def test_time_budget_raises(self, counter_system):
        with pytest.raises(ExplorationLimitError):
            explore(counter_system, budget=Budget(max_seconds=0.0))

    def test_time_budget_truncates(self, counter_system):
        result = explore(
            counter_system,
            budget=Budget(max_seconds=0.0, on_limit="truncate"),
        )
        assert not result.completed
        assert result.limit_hit == "seconds"

    def test_transition_budget_raises(self, counter_system):
        with pytest.raises(ExplorationLimitError):
            explore(counter_system, budget=Budget(max_transitions=2))

    def test_transition_budget_truncates(self, counter_system):
        result = explore(
            counter_system,
            budget=Budget(max_transitions=2, on_limit="truncate"),
        )
        assert not result.completed
        assert result.limit_hit == "transitions"
        assert result.num_transitions == 3  # stopped on the 3rd

    def test_invalid_on_limit(self):
        with pytest.raises(ValueError):
            Budget(on_limit="ignore")

    def test_unlimited_budget(self, counter_system):
        result = explore(counter_system, budget=Budget(max_states=None))
        assert result.completed
        assert result.num_states == 5

    def test_deadlock_exactly_at_state_budget(self, counter_system):
        """The deadlocked state Count(4) is the 5th and last discovered:
        a budget of exactly 5 states still finds the deadlock and the
        run completes (the boundary is not an off-by-one truncation)."""
        result = explore(counter_system, budget=Budget(max_states=5))
        assert result.num_states == 5
        assert result.completed
        assert result.deadlock_states == [proc("Count", 4)]

    def test_deadlock_discovered_but_not_expanded_at_budget(
        self, counter_system
    ):
        """With a budget of 4, Count(4)'s predecessor is expanded but
        Count(4) itself is never discovered -- the truncated result must
        not claim a deadlock-freedom proof."""
        result = explore(
            counter_system,
            budget=Budget(max_states=4, on_limit="truncate"),
        )
        assert not result.completed
        assert result.deadlock_states == []
        with pytest.warns(IncompleteExplorationWarning):
            assert result.deadlock_free


class TestTargets:
    def test_stop_at_target_on_initial_state(self, counter_system):
        initial = proc("Count", 0)
        result = explore(
            counter_system,
            target=lambda t: t is initial,
            stop_at_target=True,
        )
        assert result.target_states == [initial]
        assert not result.completed
        assert result.num_states == 1
        assert len(result.trace_to(initial)) == 0

    def test_target_collection_without_stop(self, counter_system):
        result = explore(
            counter_system, target=lambda t: t is proc("Count", 2)
        )
        assert result.target_states == [proc("Count", 2)]
        assert result.completed


class TestStrategies:
    def test_bfs_dfs_same_discovered_set_fig2(self):
        system = fig2_system()
        bfs = explore(system, strategy="bfs")
        dfs = explore(system, strategy="dfs")
        assert bfs.completed and dfs.completed
        assert set(bfs.states()) == set(dfs.states())
        assert bfs.num_states == dfs.num_states
        assert bfs.num_transitions == dfs.num_transitions
        assert bfs.stats.strategy == "bfs"
        assert dfs.stats.strategy == "dfs"

    def test_bfs_finds_shortest_counterexample(self):
        env = ProcessEnv()
        env.define(
            "Start",
            (),
            choice(
                action({"cpu": 1}) >> nil(),
                action({"bus": 1})
                >> (action({"bus": 1}) >> (action({"bus": 1}) >> nil())),
            ),
        )
        system = env.close(proc("Start"))
        result = explore(system, stop_at_first_deadlock=True)
        assert len(result.first_deadlock_trace()) == 1

    def test_random_walk_records_path(self, counter_system):
        strategy = RandomWalk(max_steps=10, seed=7)
        result = explore(counter_system, strategy=strategy)
        # The counter is a 4-step chain: the walk takes it and stops at
        # the deadlock.
        assert len(strategy.path) == 4
        assert result.deadlock_states == [proc("Count", 4)]
        assert not result.completed  # a walk never proves coverage

    def test_random_walk_rejects_negative_steps(self):
        with pytest.raises(AnalysisError):
            RandomWalk(max_steps=-1)

    def test_random_walk_bad_policy_index(self, counter_system):
        strategy = RandomWalk(max_steps=5, policy=lambda steps, rng: 99)
        with pytest.raises(AnalysisError):
            explore(counter_system, strategy=strategy)

    def test_make_strategy_resolution(self):
        assert isinstance(make_strategy(None), BreadthFirst)
        assert isinstance(make_strategy("dfs"), DepthFirst)
        dfs = DepthFirst()
        assert make_strategy(dfs) is dfs
        with pytest.raises(ValueError):
            make_strategy("best-first")
        with pytest.raises(TypeError):
            make_strategy(42)


class TestResultDiagnostics:
    def test_transitions_of_without_storage(self, counter_system):
        result = explore(counter_system)
        with pytest.raises(ValueError, match="store_transitions"):
            result.transitions_of(proc("Count", 0))

    def test_transitions_of_undiscovered_state(self, counter_system):
        result = explore(counter_system, store_transitions=True)
        with pytest.raises(KeyError, match="never discovered"):
            result.transitions_of(proc("Count", 99))

    def test_transitions_of_unexpanded_state(self):
        # Branching system: the root's first successor is discovered but
        # the budget hits before it is ever expanded.
        env = ProcessEnv()
        env.define(
            "Fork",
            (),
            choice(
                action({"cpu": 1}) >> (action({"cpu": 1}) >> nil()),
                action({"bus": 1}) >> (action({"bus": 1}) >> nil()),
            ),
        )
        result = explore(
            env.close(proc("Fork")),
            store_transitions=True,
            budget=Budget(max_states=2, on_limit="truncate"),
        )
        unexpanded = [
            state
            for state in result.states()
            if state not in result.stored_transitions
        ]
        assert unexpanded
        with pytest.raises(KeyError, match="not expanded"):
            result.transitions_of(unexpanded[-1])

    def test_deadlock_free_definitive_runs_do_not_warn(self, counter_system):
        result = explore(counter_system)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not result.deadlock_free  # completed, has deadlock

    def test_deadlock_free_truncated_with_witness_does_not_warn(
        self, counter_system
    ):
        result = explore(counter_system, stop_at_first_deadlock=True)
        assert not result.completed
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not result.deadlock_free  # witness is definitive


class TestTransitionCache:
    def test_hits_misses(self):
        cache = TransitionCache(name="t")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_bounded_eviction_is_lru(self):
        cache = TransitionCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            TransitionCache(0)

    def test_clear_keeps_counters(self):
        cache = TransitionCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        cache.reset_stats()
        assert cache.hits == 0

    def test_stats_shape(self):
        stats = TransitionCache(8, name="steps").stats()
        assert stats["name"] == "steps"
        assert stats["maxsize"] == 8
        assert set(stats) >= {"size", "hits", "misses", "evictions"}


class TestSystemCacheApi:
    def test_cache_stats_and_clear(self, counter_system):
        explore(counter_system)
        stats = counter_system.cache_stats()
        assert stats["step_cache"] >= 1
        assert stats["prio_cache"] >= 1
        assert stats["trans_cache"] >= 1
        assert stats["detail"]["semantics"]["misses"] >= 1
        counter_system.clear_cache()
        stats = counter_system.cache_stats()
        assert stats["step_cache"] == 0
        assert stats["trans_cache"] == 0
        assert stats["unfold_cache"] == 0

    def test_env_owns_explicit_trans_cache(self, counter_env):
        assert isinstance(counter_env.trans_cache, TransitionCache)
        # ProcessEnv is slotted: the old monkey-patch route is closed.
        with pytest.raises(AttributeError):
            counter_env._trans_memo = {}

    def test_rerun_hits_cache(self, counter_system):
        cold = explore(counter_system)
        warm = explore(counter_system)
        assert cold.stats.cache_misses > 0
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hit_rate == 1.0

    def test_bounded_system_caches_evict(self, counter_env):
        system = counter_env.close(proc("Count", 0), cache_maxsize=2)
        explore(system)
        stats = system.cache_stats()
        assert stats["step_cache"] <= 2
        assert stats["detail"]["steps"]["evictions"] >= 1


class TestObservers:
    def test_recording_observer_sees_run(self, counter_system):
        recorder = RecordingObserver()
        result = explore(counter_system, observers=recorder)
        assert recorder.of_kind("start")
        assert len(recorder.of_kind("state")) == 5
        assert len(recorder.of_kind("transition")) == 4
        assert len(recorder.of_kind("deadlock")) == 1
        ((_, finished),) = recorder.of_kind("finish")
        assert finished is result

    def test_on_limit_hook_fires_on_truncate(self, counter_system):
        recorder = RecordingObserver()
        explore(
            counter_system,
            budget=Budget(max_states=2, on_limit="truncate"),
            observers=recorder,
        )
        assert recorder.of_kind("limit") == [("limit", "states", 2)]

    def test_on_limit_hook_fires_before_raise(self, counter_system):
        recorder = RecordingObserver()
        with pytest.raises(ExplorationLimitError):
            explore(
                counter_system,
                budget=Budget(max_states=2),
                observers=recorder,
            )
        assert recorder.of_kind("limit") == [("limit", "states", 2)]

    def test_progress_observer_callback(self, counter_system):
        reports = []
        explore(
            counter_system,
            observers=ProgressObserver(
                every_states=2,
                callback=lambda ex, disc, el: reports.append((ex, disc)),
            ),
        )
        assert reports  # fired at expansions 2 and 4
        assert reports[0][0] == 2

    def test_progress_observer_requires_a_trigger(self):
        with pytest.raises(ValueError):
            ProgressObserver(every_states=None, every_seconds=None)

    def test_multiple_observers(self, counter_system):
        a, b = RecordingObserver(), RecordingObserver()
        explore(counter_system, observers=[a, b])
        assert len(a.events) == len(b.events) > 0


class TestProvider:
    def test_counts_calls(self, counter_system):
        provider = SuccessorProvider(counter_system)
        explore(counter_system, provider=provider)
        assert provider.calls == 5  # one expansion per state

    def test_unprioritized_relation(self):
        env = ProcessEnv()
        env.define(
            "Hi",
            (),
            choice(action({"cpu": 2}) >> proc("Hi"), idle() >> proc("Hi")),
        )
        env.define(
            "Lo",
            (),
            choice(action({"cpu": 1}) >> proc("Lo"), idle() >> proc("Lo")),
        )
        system = env.close(parallel(proc("Hi"), proc("Lo")))
        pri = explore(system, prioritized=True)
        unpri = explore(system, prioritized=False)
        assert pri.num_transitions < unpri.num_transitions


class TestEngineStats:
    def test_stats_snapshot(self, counter_system):
        result = explore(counter_system)
        stats = result.stats
        assert stats.states == 5
        assert stats.transitions == 4
        assert stats.expanded == 5
        assert stats.frontier_peak >= 1
        assert stats.parent_map_bytes > 0
        assert stats.elapsed >= 0
        assert stats.limit_hit is None
        as_dict = stats.as_dict()
        assert as_dict["states"] == 5
        assert "states/s" in stats.format() or "states" in stats.format()

    def test_explorer_shim_attaches_stats(self, counter_system):
        from repro.versa import Explorer

        result = Explorer(counter_system).run()
        assert result.stats is not None
        assert result.stats.strategy == "bfs"
