"""Pinning the UNKNOWN contract: truncation is never silent optimism.

Three promises, each load-bearing for the differential oracle:

1. a budget-truncated analysis reports UNKNOWN, never SCHEDULABLE;
2. reading ``deadlock_free`` off a truncated, deadlock-less exploration
   emits :class:`IncompleteExplorationWarning`;
3. seeded walks (``random_walk`` / ``multi_walk``) are byte-for-byte
   deterministic, so a recorded seed replays the exact behaviour.
"""

import warnings

import pytest

from repro.acsr import ProcessEnv, choice, proc, send
from repro.analysis import Verdict, analyze_model
from repro.engine import IncompleteExplorationWarning, explore
from repro.engine.budget import Budget
from repro.versa import multi_walk, random_walk
from repro.workloads import integer_task_set, task_set_to_system
import numpy as np


@pytest.fixture
def branching_system():
    """B = (a!,1).B + (b!,1).B -- two always-enabled transitions, so a
    walk's path depends entirely on its seed."""
    env = ProcessEnv()
    env.define(
        "B",
        (),
        choice(
            send("a", 1).then(proc("B")),
            send("b", 1).then(proc("B")),
        ),
    )
    return env.close(proc("B"))


def busy_system():
    """A schedulable but non-trivial system (hundreds of states)."""
    tasks = integer_task_set(
        3, 0.9, rng=np.random.default_rng(5), periods=(4, 6, 8, 12)
    )
    return task_set_to_system(tasks, scheduling="RMS")


class TestTruncationVerdict:
    def test_tiny_budget_yields_unknown(self):
        result = analyze_model(busy_system(), max_states=3)
        assert result.verdict is Verdict.UNKNOWN
        assert result.schedulable is None
        assert result.exploration.limit_hit == "states"
        assert not result.exploration.completed

    def test_truncation_never_reports_schedulable(self):
        """Sweep budgets from starvation up to exhaustive: every verdict
        is either UNKNOWN (truncated) or the true one (completed) --
        never SCHEDULABLE off a partial search."""
        instance = busy_system()
        full = analyze_model(instance, max_states=1_000_000)
        assert full.verdict is Verdict.SCHEDULABLE
        for budget in (1, 2, 5, 20, 50, full.num_states - 1):
            partial = analyze_model(instance, max_states=budget)
            if partial.verdict is Verdict.SCHEDULABLE:
                assert partial.exploration.completed
            else:
                assert partial.verdict is Verdict.UNKNOWN
                assert partial.exploration.limit_hit is not None

    def test_deadlock_witness_survives_truncation(self):
        """A deadlock found before the cap is a definitive verdict: the
        budget only makes the *positive* claim unprovable."""
        tasks = integer_task_set(
            2, 1.4, rng=np.random.default_rng(1), periods=(4, 6, 8)
        )
        instance = task_set_to_system(tasks, scheduling="RMS")
        full = analyze_model(instance)
        assert full.verdict is Verdict.UNSCHEDULABLE
        capped = analyze_model(
            instance, max_states=full.num_states
        )
        assert capped.verdict is Verdict.UNSCHEDULABLE
        assert capped.scenario is not None


class TestIncompleteExplorationWarning:
    def test_warns_on_unproven_deadlock_freedom(self, simple_system):
        result = explore(
            simple_system,
            budget=Budget(max_states=2, on_limit="truncate"),
        )
        assert not result.completed
        with pytest.warns(IncompleteExplorationWarning):
            assert result.deadlock_free

    def test_no_warning_on_complete_exploration(self, simple_system):
        result = explore(simple_system)
        assert result.completed
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.deadlock_free


class TestWalkDeterminism:
    def fingerprint(self, trace):
        return trace.format()

    def test_random_walk_deterministic_for_fixed_seed(self, simple_system):
        first = random_walk(simple_system, max_steps=40, seed=1234)
        second = random_walk(simple_system, max_steps=40, seed=1234)
        assert self.fingerprint(first) == self.fingerprint(second)

    def test_random_walk_seeds_differ(self, branching_system):
        walks = [
            self.fingerprint(
                random_walk(branching_system, max_steps=40, seed=seed)
            )
            for seed in range(8)
        ]
        assert len(set(walks)) > 1

    def test_multi_walk_deterministic_for_fixed_seed(self, branching_system):
        first = multi_walk(
            branching_system, walks=6, max_steps=30, seed=99
        )
        second = multi_walk(
            branching_system, walks=6, max_steps=30, seed=99
        )
        assert [self.fingerprint(t) for t in first] == [
            self.fingerprint(t) for t in second
        ]

    def test_multi_walk_children_are_independent(self, branching_system):
        traces = multi_walk(
            branching_system, walks=6, max_steps=30, seed=99
        )
        assert len(traces) == 6
        assert len({self.fingerprint(t) for t in traces}) > 1
