"""The hier oracle campaign: interface ⇒ flattened-simulation.

The soundness gate for the BDR abstraction: across seeded partitioned
workloads the sufficient interface check must never pass a partition
the exact supply-aware simulation fails, and the ``inflate-alpha``
fault self-test proves the campaign can catch an over-promising
derivation.
"""

import pytest

from repro.cli import main
from repro.oracle import evaluate_hier_case, run_hier_campaign
from repro.oracle.hier import classify_partition
from repro.oracle.verdicts import AgreementStatus
from repro.workloads import partitioned_system


class TestClassification:
    def test_interface_pass_sim_fail_is_the_bug_signal(self):
        assert (
            classify_partition(True, False) is AgreementStatus.DISAGREED
        )

    def test_conservatism_is_agreement(self):
        assert classify_partition(False, True) is AgreementStatus.AGREED
        assert classify_partition(True, True) is AgreementStatus.AGREED
        assert classify_partition(False, False) is AgreementStatus.AGREED

    def test_capped_window_is_unknown(self):
        assert classify_partition(True, None) is AgreementStatus.UNKNOWN


class TestGenerator:
    def test_partitioned_system_shape(self):
        import numpy as np

        instance = partitioned_system(
            3, 2, rng=np.random.default_rng(7)
        )
        vprocs = instance.virtual_processors()
        assert len(vprocs) == 3
        threads = instance.threads()
        assert len(threads) == 6
        assert all(
            t.bound_processor is not t.host_processor for t in threads
        )

    def test_seeded_draw_reproduces(self):
        a = evaluate_hier_case(3)
        b = evaluate_hier_case(3)
        assert (a.partitions, a.interface_passes, a.sim_passes) == (
            b.partitions,
            b.interface_passes,
            b.sim_passes,
        )


class TestCampaign:
    def test_fifty_seeds_agree(self):
        report = run_hier_campaign(seeds=50)
        assert not report.disagreements, report.format()
        # The draw must exercise both sides of the relation.
        assert sum(o.interface_passes for o in report.outcomes) > 0
        assert any(
            o.sim_passes < o.partitions for o in report.outcomes
        )

    def test_inflate_alpha_fault_is_caught(self):
        report = run_hier_campaign(seeds=50, fault="inflate-alpha")
        assert report.disagreements, (
            "the inflate-alpha fault must produce at least one "
            "interface-pass / simulation-fail split"
        )

    def test_cli_exit_codes(self):
        assert main(["oracle", "hier", "--seeds", "5"]) == 0
        assert (
            main(
                [
                    "oracle",
                    "hier",
                    "--seeds",
                    "10",
                    "--fault",
                    "inflate-alpha",
                ]
            )
            == 1
        )

    def test_report_format_mentions_conservatism(self):
        report = run_hier_campaign(seeds=15)
        text = report.format()
        assert "conservative" in text
        assert "disagreed: 0" in text
