"""Tests of AADL property values, units and lookup."""

import pytest

from repro.errors import AadlPropertyError
from repro.aadl.properties import (
    DispatchProtocol,
    OverflowHandlingProtocol,
    PropertyAssociation,
    PropertyHolder,
    ReferenceValue,
    SchedulingProtocol,
    TimeRange,
    TimeValue,
    ms,
    us,
)


class TestTimeValue:
    def test_exact_unit_conversion(self):
        assert TimeValue(1, "ms").picoseconds == 10**9
        assert TimeValue(1, "sec").picoseconds == 10**12
        assert TimeValue(2, "min").picoseconds == 120 * 10**12

    def test_equality_across_units(self):
        assert TimeValue(1, "ms") == TimeValue(1000, "us")
        assert hash(ms(1)) == hash(us(1000))

    def test_ordering(self):
        assert us(999) < ms(1)
        assert ms(1) <= us(1000)

    def test_rejects_unknown_unit(self):
        with pytest.raises(AadlPropertyError):
            TimeValue(1, "fortnight")

    def test_rejects_negative(self):
        with pytest.raises(AadlPropertyError):
            TimeValue(-1, "ms")

    def test_rejects_float(self):
        with pytest.raises(AadlPropertyError):
            TimeValue(1.5, "ms")

    def test_to_ms(self):
        assert us(1500).to_ms() == 1.5

    def test_str(self):
        assert str(ms(10)) == "10 ms"


class TestTimeRange:
    def test_construction(self):
        r = TimeRange(ms(1), ms(3))
        assert r.low == ms(1) and r.high == ms(3)

    def test_empty_range_rejected(self):
        with pytest.raises(AadlPropertyError):
            TimeRange(ms(3), ms(1))

    def test_point_range_allowed(self):
        TimeRange(ms(2), ms(2))

    def test_cross_unit_range(self):
        TimeRange(us(500), ms(2))


class TestEnums:
    def test_dispatch_protocol_parse(self):
        assert DispatchProtocol.parse("periodic") is DispatchProtocol.PERIODIC
        assert DispatchProtocol.parse("Sporadic") is DispatchProtocol.SPORADIC

    def test_dispatch_protocol_unknown(self):
        with pytest.raises(AadlPropertyError):
            DispatchProtocol.parse("monthly")

    @pytest.mark.parametrize(
        "text,member",
        [
            ("RMS", SchedulingProtocol.RATE_MONOTONIC),
            ("rate_monotonic_protocol", SchedulingProtocol.RATE_MONOTONIC),
            ("DMS", SchedulingProtocol.DEADLINE_MONOTONIC),
            ("EDF", SchedulingProtocol.EARLIEST_DEADLINE_FIRST),
            ("llf", SchedulingProtocol.LEAST_LAXITY_FIRST),
            ("fixed_priority", SchedulingProtocol.HIGHEST_PRIORITY_FIRST),
        ],
    )
    def test_scheduling_protocol_aliases(self, text, member):
        assert SchedulingProtocol.parse(text) is member

    def test_is_fixed_priority(self):
        assert SchedulingProtocol.RATE_MONOTONIC.is_fixed_priority
        assert not SchedulingProtocol.EARLIEST_DEADLINE_FIRST.is_fixed_priority

    def test_overflow_drops(self):
        assert OverflowHandlingProtocol.DROP_NEWEST.drops
        assert OverflowHandlingProtocol.DROP_OLDEST.drops
        assert not OverflowHandlingProtocol.ERROR.drops


class TestReferenceValue:
    def test_path(self):
        ref = ReferenceValue(("a", "b"))
        assert ref.path == ("a", "b")
        assert str(ref) == "reference(a.b)"

    def test_empty_path_rejected(self):
        with pytest.raises(AadlPropertyError):
            ReferenceValue(())


class TestPropertyHolder:
    def test_own_property_lookup(self):
        holder = PropertyHolder()
        holder.add_property("Period", ms(10))
        assert holder.own_property("period") == ms(10)

    def test_case_insensitive(self):
        holder = PropertyHolder()
        holder.add_property("Dispatch_Protocol", DispatchProtocol.PERIODIC)
        assert (
            holder.own_property("DISPATCH_PROTOCOL")
            is DispatchProtocol.PERIODIC
        )

    def test_later_association_overrides(self):
        holder = PropertyHolder()
        holder.add_property("Period", ms(10))
        holder.add_property("Period", ms(20))
        assert holder.own_property("period") == ms(20)

    def test_default(self):
        holder = PropertyHolder()
        assert holder.own_property("period", ms(1)) == ms(1)

    def test_contained_separate_from_own(self):
        holder = PropertyHolder()
        holder.add_property("Priority", 1)
        holder.add_property("Priority", 2, applies_to=("sub",))
        assert holder.own_property("priority") == 1
        contained = holder.contained_properties("priority")
        assert len(contained) == 1
        assert contained[0].applies_to == ("sub",)

    def test_property_set_prefix_normalized(self):
        holder = PropertyHolder()
        holder.add_property("SEI::Priority", 5)
        assert holder.own_property("sei::priority") == 5
