"""Tests of the preemption relation and the prioritized semantics."""

import pytest

from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    idle,
    nil,
    parallel,
    preempts,
    prioritized,
    prioritized_transitions,
    proc,
    recv,
    restrict,
    send,
    tau,
)
from repro.acsr.events import EventLabel, IN, OUT, event_label, tau_label
from repro.acsr.resources import Action


def A(*pairs):
    return Action(pairs)


class TestActionPreemption:
    def test_higher_priority_same_resource(self):
        assert preempts(A(("cpu", 1)), A(("cpu", 2)))
        assert not preempts(A(("cpu", 2)), A(("cpu", 1)))

    def test_equal_actions_do_not_preempt(self):
        assert not preempts(A(("cpu", 1)), A(("cpu", 1)))

    def test_resource_using_step_preempts_idle(self):
        # Paper: "any resource-using step will preempt an idling step".
        assert preempts(A(), A(("cpu", 1)))

    def test_zero_priority_step_does_not_preempt_idle(self):
        # Strictness: no resource has strictly greater priority than 0.
        assert not preempts(A(), A(("cpu", 0)))

    def test_superset_with_equal_priorities_preempts(self):
        # rho(low) subset of rho(high), equal on shared, strict on the
        # extra resource (priority 1 > absent 0).
        assert preempts(A(("cpu", 1)), A(("cpu", 1), ("bus", 1)))

    def test_subset_does_not_preempt(self):
        assert not preempts(A(("cpu", 1), ("bus", 1)), A(("cpu", 2)))

    def test_incomparable_resources(self):
        assert not preempts(A(("cpu", 1)), A(("bus", 2)))
        assert not preempts(A(("bus", 2)), A(("cpu", 1)))

    def test_mixed_priorities_no_preemption(self):
        # One resource higher, the other lower: incomparable.
        low = A(("cpu", 1), ("bus", 2))
        high = A(("cpu", 2), ("bus", 1))
        assert not preempts(low, high)
        assert not preempts(high, low)


class TestEventPreemption:
    def test_tau_preempts_actions(self):
        assert preempts(A(("cpu", 5)), tau_label(1))
        assert preempts(A(), tau_label(1))

    def test_zero_priority_tau_does_not_preempt_actions(self):
        assert not preempts(A(("cpu", 1)), tau_label(0))

    def test_actions_never_preempt_events(self):
        assert not preempts(tau_label(1), A(("cpu", 5)))

    def test_same_label_higher_priority(self):
        assert preempts(event_label("e", IN, 1), event_label("e", IN, 2))
        assert not preempts(event_label("e", IN, 2), event_label("e", IN, 1))

    def test_different_names_incomparable(self):
        assert not preempts(event_label("e", IN, 1), event_label("f", IN, 2))

    def test_different_directions_incomparable(self):
        assert not preempts(event_label("e", IN, 1), event_label("e", OUT, 2))

    def test_tau_vs_tau_by_priority(self):
        assert preempts(tau_label(1, via="a"), tau_label(2, via="b"))
        assert not preempts(tau_label(2), tau_label(2))

    def test_external_event_does_not_preempt_action(self):
        assert not preempts(A(("cpu", 1)), event_label("e", OUT, 9))


class TestPrioritizedRelation:
    def test_removes_dominated_transitions(self):
        steps = (
            (A(("cpu", 1)), nil()),
            (A(("cpu", 2)), nil()),
            (A(), nil()),
        )
        kept = prioritized(steps)
        assert [label for label, _ in kept] == [A(("cpu", 2))]

    def test_keeps_incomparable(self):
        steps = ((A(("cpu", 1)), nil()), (A(("bus", 1)), nil()))
        assert len(prioritized(steps)) == 2

    def test_subset_of_unprioritized(self, env):
        env.define(
            "P",
            (),
            choice(
                action({"cpu": 1}) >> proc("P"),
                action({"cpu": 2}) >> proc("P"),
                idle() >> proc("P"),
            ),
        )
        unpri = env.close(proc("P")).steps()
        pri = prioritized_transitions(proc("P"), env)
        assert set(pri) <= set(unpri)
        assert len(pri) == 1


class TestSchedulingScenario:
    def test_higher_priority_thread_wins_cpu(self, env):
        """Two threads on one cpu: the prioritized relation leaves only
        the high-priority thread's step."""
        env.define(
            "Low",
            (),
            choice(
                action({"cpu": 1}) >> proc("Low"),
                idle() >> proc("Low"),
            ),
        )
        env.define(
            "High",
            (),
            choice(
                action({"cpu": 2}) >> proc("High"),
                idle() >> proc("High"),
            ),
        )
        system = env.close(parallel(proc("Low"), proc("High")))
        steps = system.prioritized_steps()
        assert len(steps) == 1
        assert steps[0][0] is A(("cpu", 2))

    def test_urgent_tau_blocks_time(self, env):
        """A pending positive-priority synchronization preempts all timed
        steps (dispatch immediacy in the translation)."""
        env.define("Snd", (), send("go", 1) >> proc("Idle"))
        env.define(
            "Rcv",
            (),
            choice(recv("go", 1) >> proc("Idle"), idle() >> proc("Rcv")),
        )
        env.define("Idle", (), idle() >> proc("Idle"))
        env.define("Work", (), action({"cpu": 1}) >> proc("Work"))
        system = env.close(
            restrict(
                parallel(proc("Snd"), proc("Rcv"), proc("Work")), ["go"]
            )
        )
        steps = system.prioritized_steps()
        assert len(steps) == 1
        label = steps[0][0]
        assert label.is_tau and label.via == "go"

    def test_zero_priority_tau_coexists_with_time(self, env):
        """Priority-0 synchronizations stay nondeterministic alternatives
        (the completion handshake of the translation)."""
        env.define("Snd", (), choice(
            send("fin", 0) >> proc("Idle"),
            idle() >> proc("Snd"),
        ))
        env.define(
            "Rcv",
            (),
            choice(recv("fin", 0) >> proc("Idle"), idle() >> proc("Rcv")),
        )
        env.define("Idle", (), idle() >> proc("Idle"))
        system = env.close(
            restrict(parallel(proc("Snd"), proc("Rcv")), ["fin"])
        )
        labels = {str(label) for label, _ in system.prioritized_steps()}
        assert "(tau@fin,0)" in labels
        assert "idle" in labels
