"""Tests of the differential-testing oracle subsystem.

Covers campaign runs (agreement on a healthy pipeline), fault injection
(a deliberately broken pipeline is caught and shrunk to a small
reproducer), bundle round-tripping, the shrinker, and the CLI surface.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import SchedError
from repro.oracle import (
    AgreementStatus,
    OracleCase,
    PROFILES,
    ReproBundle,
    classical_verdicts,
    classify,
    draw_case,
    evaluate_case,
    get_fault,
    replay_bundle,
    run_campaign,
    run_pipeline,
    shrink_case,
)
from repro.sched import PeriodicTask, TaskSet
from repro.workloads import (
    constrained_deadline_task_set,
    generate_task_set,
    harmonic_task_set,
    offset_task_set,
)


def make_case(specs, scheduling="RMS", case_id="manual"):
    tasks = TaskSet(
        [
            PeriodicTask(f"t{i}", **spec)
            for i, spec in enumerate(specs)
        ]
    )
    return OracleCase.from_task_set(
        tasks, scheduling=scheduling, case_id=case_id
    )


class TestGenerators:
    def test_harmonic_periods_divide(self):
        tasks = harmonic_task_set(5, 0.9, rng=__import__("numpy").random.default_rng(7))
        periods = sorted({task.period for task in tasks})
        for small, large in zip(periods, periods[1:]):
            assert large % small == 0

    def test_harmonic_rejects_non_chain_pool(self):
        with pytest.raises(SchedError):
            harmonic_task_set(3, 0.5, periods=(4, 6, 8))

    def test_constrained_deadlines_within_bounds(self):
        import numpy as np

        tasks = constrained_deadline_task_set(
            6, 0.8, rng=np.random.default_rng(3)
        )
        assert any(task.deadline < task.period for task in tasks)
        for task in tasks:
            assert task.wcet <= task.deadline <= task.period

    def test_offsets_within_period(self):
        import numpy as np

        tasks = offset_task_set(6, 0.8, rng=np.random.default_rng(11))
        for task in tasks:
            assert 0 <= task.offset < task.period

    def test_registry_rejects_unknown_generator(self):
        with pytest.raises(SchedError, match="unknown task-set generator"):
            generate_task_set("nope", 2, 0.5, seed=0)


class TestClassification:
    def test_agreed_case(self):
        case = make_case([dict(wcet=1, period=4), dict(wcet=2, period=8)])
        pipeline, oracles, classification = evaluate_case(case)
        assert classification.status is AgreementStatus.AGREED
        assert pipeline.schedulable is True

    def test_unknown_is_explicit_never_agreement(self):
        case = make_case([dict(wcet=1, period=4), dict(wcet=2, period=8)])
        pipeline, oracles, classification = evaluate_case(
            case, max_states=3
        )
        assert pipeline.verdict.value == "unknown"
        assert classification.status is AgreementStatus.UNKNOWN
        assert classification.conflicts == []
        assert any("budget" in note for note in classification.notes)

    def test_offset_case_demotes_rta_to_sufficient(self):
        # Synchronously infeasible (two C=2, D=2 jobs at t=0), but the
        # offsets separate the phases completely: the pipeline must say
        # schedulable while synchronous RTA says no -- and that is
        # agreement, because RTA is only a sufficient test here.
        case = make_case(
            [
                dict(wcet=2, period=4, deadline=2, offset=0),
                dict(wcet=2, period=4, deadline=2, offset=2),
            ]
        )
        pipeline, oracles, classification = evaluate_case(case)
        assert pipeline.schedulable is True
        rta = next(
            o for o in oracles if o.method == "response-time-analysis"
        )
        assert rta.relation == "sufficient"
        assert rta.verdict is False
        assert classification.status is AgreementStatus.AGREED

    def test_fault_produces_disagreement(self):
        # U = 7/6 > 1: really unschedulable, but the faulted pipeline
        # translates every WCET one quantum short and says schedulable.
        case = make_case([dict(wcet=3, period=6), dict(wcet=4, period=6)])
        fault = get_fault("underestimate-wcet")
        pipeline = run_pipeline(case, fault=fault)
        oracles = classical_verdicts(case)
        classification = classify(pipeline, oracles)
        assert pipeline.schedulable is True
        assert classification.status is AgreementStatus.DISAGREED
        assert "utilization-cap" in classification.conflicts


class TestShrinker:
    def test_shrinks_to_single_task(self):
        case = make_case(
            [
                dict(wcet=1, period=8),
                dict(wcet=2, period=12),
                dict(wcet=3, period=6),
            ]
        )

        def has_heavy_task(candidate):
            return any(task["wcet"] >= 3 for task in candidate.tasks)

        result = shrink_case(case, has_heavy_task)
        assert len(result.case.tasks) == 1
        assert result.case.tasks[0]["wcet"] == 3
        assert result.reductions > 0

    def test_shrinks_wcet_and_period(self):
        case = make_case([dict(wcet=4, period=12)])

        def non_trivial(candidate):
            return any(task["wcet"] >= 2 for task in candidate.tasks)

        result = shrink_case(case, non_trivial, period_pool=[4, 8, 12])
        assert result.case.tasks[0]["wcet"] == 2
        assert result.case.tasks[0]["period"] == 4

    def test_respects_evaluation_budget(self):
        case = make_case([dict(wcet=2, period=8)] )

        def always(candidate):
            return True

        result = shrink_case(case, always, max_evaluations=1)
        assert result.evaluations <= 1


class TestCampaign:
    def test_smoke_campaign_all_agree(self, tmp_path):
        report = run_campaign(
            seeds=16, profile="smoke", artifacts_dir=str(tmp_path)
        )
        assert len(report.outcomes) == 16
        assert report.disagreements == []
        assert len(report.agreed) + len(report.unknown) == 16
        # Every generator was exercised.
        assert {o.case.generator for o in report.outcomes} == {
            "uniform", "harmonic", "constrained", "offset"
        }
        # Engine accounting flowed through the stats layer.
        assert report.totals["runs"] == 16
        assert report.totals["states"] > 0
        assert report.totals["cache_hits"] > 0
        assert "agreement matrix" in report.format()

    def test_campaign_is_deterministic(self, tmp_path):
        first = run_campaign(
            seeds=6, profile="smoke", artifacts_dir=str(tmp_path / "a")
        )
        second = run_campaign(
            seeds=6, profile="smoke", artifacts_dir=str(tmp_path / "b")
        )
        assert [o.case.to_dict() for o in first.outcomes] == [
            o.case.to_dict() for o in second.outcomes
        ]
        assert [o.verdict for o in first.outcomes] == [
            o.verdict for o in second.outcomes
        ]

    def test_draw_case_covers_boundary_band(self):
        profile = PROFILES["smoke"]
        drawn = [draw_case(profile, seed, seed) for seed in range(40)]
        assert any(
            0.85 <= case.params["utilization"] <= 1.1 for case in drawn
        )

    def test_injected_fault_is_caught_and_shrunk(self, tmp_path):
        report = run_campaign(
            seeds=24,
            profile="smoke",
            artifacts_dir=str(tmp_path),
            fault="underestimate-wcet",
        )
        assert report.disagreements, (
            "the harness failed to catch a deliberately broken pipeline"
        )
        sizes = [
            len(outcome.shrunk_case.tasks)
            for outcome in report.disagreements
        ]
        assert min(sizes) <= 2
        # Every disagreement was persisted as a replayable bundle.
        for outcome in report.disagreements:
            assert outcome.bundle_path is not None
            assert os.path.exists(outcome.bundle_path)
        # Replaying against the healthy pipeline shows the fix...
        bundle = ReproBundle.load(report.disagreements[0].bundle_path)
        healthy = replay_bundle(bundle)
        assert healthy.classification.status is AgreementStatus.AGREED
        assert not healthy.verdict_matches
        # ...and re-injecting the recorded fault reproduces the failure.
        historical = replay_bundle(bundle, fault=bundle.fault)
        assert historical.verdict_matches
        assert (
            historical.classification.status is AgreementStatus.DISAGREED
        )

    def test_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(SchedError, match="at least one seed"):
            run_campaign(seeds=0, artifacts_dir=str(tmp_path))
        with pytest.raises(SchedError, match="unknown campaign profile"):
            run_campaign(
                seeds=1, profile="huge", artifacts_dir=str(tmp_path)
            )
        with pytest.raises(SchedError, match="unknown fault"):
            run_campaign(
                seeds=1, fault="nope", artifacts_dir=str(tmp_path)
            )


class TestBundles:
    def _bundle(self, tmp_path):
        case = make_case(
            [dict(wcet=1, period=4), dict(wcet=2, period=8)],
            case_id="bundle-test",
        )
        pipeline, oracles, classification = evaluate_case(case)
        return ReproBundle.from_evaluation(
            kind="regression",
            case=case,
            pipeline=pipeline,
            oracles=oracles,
            classification=classification,
            max_states=300_000,
            profile="smoke",
        )

    def test_round_trips_through_dict(self, tmp_path):
        bundle = self._bundle(tmp_path)
        clone = ReproBundle.from_dict(bundle.to_dict())
        assert clone.to_dict() == bundle.to_dict()

    def test_round_trips_through_file(self, tmp_path):
        bundle = self._bundle(tmp_path)
        path = bundle.save(str(tmp_path))
        assert path.endswith("bundle-test.json")
        loaded = ReproBundle.load(path)
        assert loaded.to_dict() == bundle.to_dict()
        # The stored AADL text parses and re-analyzes.
        assert "system implementation" in loaded.aadl

    def test_replay_matches_recorded_verdict(self, tmp_path):
        bundle = self._bundle(tmp_path)
        result = replay_bundle(bundle)
        assert result.verdict_matches
        assert "verdict match: yes" in result.format()

    def test_rejects_unknown_schema_version(self):
        data = self._bundle(None).to_dict()
        data["schema_version"] = 99
        with pytest.raises(SchedError, match="schema version"):
            ReproBundle.from_dict(data)

    def test_rejects_unknown_kind(self, tmp_path):
        bundle = self._bundle(tmp_path)
        data = bundle.to_dict()
        data["kind"] = "mystery"
        with pytest.raises(SchedError, match="bundle kind"):
            ReproBundle.from_dict(data)


class TestCaseSerialization:
    def test_case_round_trip(self):
        case = OracleCase.generate(
            "offset", 42, n=3, utilization=0.7, scheduling="EDF"
        )
        clone = OracleCase.from_dict(case.to_dict())
        assert clone.to_dict() == case.to_dict()

    def test_missing_fields_raise(self):
        with pytest.raises(SchedError, match="missing fields"):
            OracleCase.from_dict({"case_id": "x"})

    def test_aadl_text_round_trips_through_parser(self):
        from repro.aadl import instantiate, parse_model

        case = OracleCase.generate(
            "offset", 9, n=2, utilization=0.6, scheduling="RMS"
        )
        model = parse_model(case.aadl_text())
        instance = instantiate(model, "Synthetic.impl")
        assert len(list(instance.threads())) == 2


class TestOracleCli:
    def test_run_exits_zero_on_agreement(self, tmp_path, capsys):
        status = main(
            [
                "oracle", "run",
                "--seeds", "6",
                "--profile", "smoke",
                "--artifacts", str(tmp_path),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "agreement matrix" in out

    def test_run_exits_nonzero_on_disagreement(self, tmp_path, capsys):
        status = main(
            [
                "oracle", "run",
                "--seeds", "12",
                "--profile", "smoke",
                "--artifacts", str(tmp_path),
                "--fault", "underestimate-wcet",
            ]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "DISAGREEMENT" in out
        assert "replay" in out

    def test_replay_round_trip(self, tmp_path, capsys):
        main(
            [
                "oracle", "run",
                "--seeds", "12",
                "--profile", "smoke",
                "--artifacts", str(tmp_path),
                "--fault", "underestimate-wcet",
            ]
        )
        capsys.readouterr()
        bundles = sorted(tmp_path.glob("*.json"))
        assert bundles
        # Healthy pipeline: verdict differs from the faulted recording.
        status = main(["oracle", "replay", str(bundles[0])])
        assert status == 1
        # Re-injecting the fault reproduces the historical verdict.
        status = main(
            ["oracle", "replay", str(bundles[0]), "--with-fault"]
        )
        assert status == 0
