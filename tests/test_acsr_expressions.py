"""Unit tests for the ACSR expression language."""

import pytest

from repro.errors import AcsrEvaluationError
from repro.acsr.expressions import (
    BinOp,
    BoolOp,
    Cmp,
    Const,
    Not,
    Param,
    TrueExpr,
    as_expr,
    const,
    maximum,
    minimum,
    var,
)


class TestConst:
    def test_evaluates_to_value(self):
        assert Const(7).evaluate({}) == 7

    def test_no_free_params(self):
        assert Const(7).free_params() == frozenset()

    def test_rejects_bool(self):
        with pytest.raises(AcsrEvaluationError):
            Const(True)

    def test_rejects_non_int(self):
        with pytest.raises(AcsrEvaluationError):
            Const("x")


class TestParam:
    def test_evaluates_from_env(self):
        assert Param("e").evaluate({"e": 3}) == 3

    def test_unbound_raises(self):
        with pytest.raises(AcsrEvaluationError):
            Param("e").evaluate({"s": 1})

    def test_free_params(self):
        assert Param("e").free_params() == frozenset({"e"})

    def test_rejects_empty_name(self):
        with pytest.raises(AcsrEvaluationError):
            Param("")


class TestBinOp:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 3, 4, 7),
            ("-", 3, 4, -1),
            ("*", 3, 4, 12),
            ("//", 7, 2, 3),
            ("%", 7, 2, 1),
            ("min", 3, 4, 3),
            ("max", 3, 4, 4),
        ],
    )
    def test_operators(self, op, a, b, expected):
        assert BinOp(op, Const(a), Const(b)).evaluate({}) == expected

    def test_division_by_zero(self):
        with pytest.raises(AcsrEvaluationError):
            BinOp("//", Const(1), Const(0)).evaluate({})

    def test_modulo_by_zero(self):
        with pytest.raises(AcsrEvaluationError):
            BinOp("%", Const(1), Const(0)).evaluate({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(AcsrEvaluationError):
            BinOp("**", Const(1), Const(2))

    def test_free_params_union(self):
        expr = BinOp("+", Param("e"), Param("s"))
        assert expr.free_params() == frozenset({"e", "s"})


class TestOperatorSugar:
    def test_add_sub_mul(self):
        e = var("e")
        assert (e + 1).evaluate({"e": 2}) == 3
        assert (e - 1).evaluate({"e": 2}) == 1
        assert (e * 3).evaluate({"e": 2}) == 6
        assert (10 - e).evaluate({"e": 2}) == 8

    def test_comparisons(self):
        e = var("e")
        assert (e < 3).evaluate({"e": 2})
        assert not (e < 2).evaluate({"e": 2})
        assert (e <= 2).evaluate({"e": 2})
        assert (e >= 2).evaluate({"e": 2})
        assert (e > 1).evaluate({"e": 2})
        assert e.eq(2).evaluate({"e": 2})
        assert e.ne(3).evaluate({"e": 2})

    def test_eq_keeps_identity_semantics(self):
        # __eq__ is not overloaded: expressions can live in sets.
        e = var("e")
        assert len({e, e}) == 1

    def test_boolean_combinators(self):
        e = var("e")
        both = (e > 0) & (e < 5)
        assert both.evaluate({"e": 3})
        assert not both.evaluate({"e": 5})
        either = (e < 1) | (e > 4)
        assert either.evaluate({"e": 0})
        assert not either.evaluate({"e": 3})
        negated = ~(e < 1)
        assert negated.evaluate({"e": 3})

    def test_min_max_helpers(self):
        assert minimum(var("a"), 3).evaluate({"a": 5}) == 3
        assert maximum(var("a"), 3).evaluate({"a": 5}) == 5


class TestAsExpr:
    def test_int_becomes_const(self):
        assert isinstance(as_expr(4), Const)

    def test_str_becomes_param(self):
        assert isinstance(as_expr("e"), Param)

    def test_expr_passthrough(self):
        e = var("e")
        assert as_expr(e) is e

    def test_bool_rejected(self):
        with pytest.raises(AcsrEvaluationError):
            as_expr(True)

    def test_other_rejected(self):
        with pytest.raises(AcsrEvaluationError):
            as_expr(3.5)


class TestBoolNodes:
    def test_true_expr(self):
        assert TrueExpr().evaluate({})
        assert TrueExpr().free_params() == frozenset()

    def test_not(self):
        assert not Not(TrueExpr()).evaluate({})

    def test_cmp_free_params(self):
        cmp = Cmp("<", Param("a"), Param("b"))
        assert cmp.free_params() == frozenset({"a", "b"})

    def test_bool_op_rejects_unknown(self):
        with pytest.raises(AcsrEvaluationError):
            BoolOp("xor", TrueExpr(), TrueExpr())

    def test_str_renderings(self):
        e = var("e")
        assert str(e + 1) == "(e + 1)"
        assert str(e < 3) == "(e < 3)"
        assert str(minimum(e, 2)) == "min(e, 2)"
