"""The tiered verdict portfolio: tiers, witnesses, wiring, CLI."""

import pytest

from repro.aadl import format_model
from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import (
    sporadic_consumer,
    two_periodic_threads,
)
from repro.aadl.properties import (
    DispatchProtocol,
    SchedulingProtocol,
    ms,
)
from repro.analysis import Verdict, analyze_model
from repro.cli import main
from repro.portfolio import (
    PortfolioAnalyzer,
    RtaTier,
    SimulationTier,
    Soundness,
    UtilizationBoundTier,
    UtilizationCapTier,
    analyze_portfolio,
    build_context,
    default_tiers,
    tiers_from_token,
)
from repro.portfolio.context import AnalyticUnit
from repro.sched.taskmodel import PeriodicTask, TaskSet


def _single_cpu_system(
    tasks,
    *,
    scheduling=SchedulingProtocol.RATE_MONOTONIC,
    name="Portfolio",
):
    b = SystemBuilder(name)
    cpu = b.processor("cpu", scheduling=scheduling)
    for spec in tasks:
        b.thread(
            spec["name"],
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(spec["period"]),
            compute_time=(ms(spec["wcet"]), ms(spec["wcet"])),
            deadline=ms(spec.get("deadline", spec["period"])),
            processor=cpu,
            priority=spec.get("priority"),
            offset=ms(spec["offset"]) if spec.get("offset") else None,
        )
    return b.instantiate()


def _unit(tasks, protocol=SchedulingProtocol.RATE_MONOTONIC):
    return AnalyticUnit("cpu", TaskSet(tasks), protocol)


class TestContext:
    def test_classical_fragment_yields_units(self):
        context = build_context(two_periodic_threads())
        assert context.applicable
        assert len(context.units) == 1
        unit = context.units[0]
        assert len(unit.tasks) == 2
        assert unit.ordering == "rate"
        assert unit.synchronous

    def test_sporadic_dispatch_is_inapplicable(self):
        context = build_context(sporadic_consumer())
        assert not context.applicable
        assert "outside the periodic task model" in context.inapplicable

    def test_queued_connection_is_inapplicable(self):
        instance = sporadic_consumer()
        reason = build_context(instance).inapplicable
        assert reason is not None

    def test_pure_data_connection_is_inert(self):
        from repro.aadl.gallery import dual_island

        context = build_context(dual_island())
        assert context.applicable
        assert len(context.units) == 2


class TestTierSoundness:
    def test_sufficient_tier_never_claims_unschedulable(self):
        """The hyperbolic bound failing proves nothing: a SUFFICIENT
        tier must return None, not an unschedulable decision."""
        tier = UtilizationBoundTier()
        assert tier.soundness is Soundness.SUFFICIENT
        # U = 0.75 + 0.25 = 1.0 > hyperbolic bound for 2 tasks, yet the
        # set (harmonic) is schedulable -- the tier must stay silent.
        unit = _unit(
            [
                PeriodicTask("a", 3, 4, priority=2),
                PeriodicTask("b", 2, 8, priority=1),
            ]
        )
        assert tier.decide(unit) is None

    def test_necessary_tier_never_claims_schedulable(self):
        tier = UtilizationCapTier()
        assert tier.soundness is Soundness.NECESSARY
        unit = _unit([PeriodicTask("a", 1, 4, priority=1)])
        assert tier.decide(unit) is None  # U <= 1 proves nothing

    def test_overutilized_unit_gets_witness(self):
        tier = UtilizationCapTier()
        unit = _unit(
            [
                PeriodicTask("a", 3, 4, priority=2),
                PeriodicTask("b", 3, 8, priority=1),
            ]
        )
        decision = tier.decide(unit)
        assert decision is not None
        assert not decision.schedulable
        assert decision.scenario is not None
        assert decision.scenario.misses

    def test_rta_demotes_on_offsets(self):
        """A failing RTA with nonzero offsets proves nothing (t = 0 is
        no longer the critical instant) -- the tier must escalate."""
        tier = RtaTier()
        failing_synchronous = _unit(
            [
                PeriodicTask("a", 2, 4, priority=2),
                PeriodicTask("b", 5, 8, priority=1),
            ]
        )
        decision = tier.decide(failing_synchronous)
        assert decision is not None and not decision.schedulable
        with_offsets = _unit(
            [
                PeriodicTask("a", 2, 4, priority=2),
                PeriodicTask("b", 5, 8, priority=1, offset=2),
            ]
        )
        assert tier.decide(with_offsets) is None

    def test_rta_pass_covers_offsets(self):
        tier = RtaTier()
        unit = _unit(
            [
                PeriodicTask("a", 1, 4, priority=2, offset=1),
                PeriodicTask("b", 2, 8, priority=1),
            ]
        )
        decision = tier.decide(unit)
        assert decision is not None and decision.schedulable

    def test_simulation_tier_excludes_llf(self):
        tier = SimulationTier()
        unit = _unit(
            [PeriodicTask("a", 1, 4)],
            SchedulingProtocol.LEAST_LAXITY_FIRST,
        )
        assert not tier.applicable(unit)

    def test_simulation_horizon_caps_escalate(self):
        tier = SimulationTier(max_horizon=4)
        unit = _unit(
            [
                PeriodicTask("a", 1, 4, priority=2),
                PeriodicTask("b", 2, 8, priority=1),
            ]
        )
        assert tier.decide(unit) is None  # hyperperiod 8 > cap 4


class TestTierConfig:
    def test_default_chain_order(self):
        names = [tier.name for tier in default_tiers()]
        assert names == [
            "hier",
            "utilization-cap",
            "utilization-bound",
            "rta",
            "edf-demand",
            "simulation",
        ]

    def test_token_roundtrip(self):
        analyzer = PortfolioAnalyzer()
        rebuilt = tiers_from_token(analyzer.config_token)
        assert [t.name for t in rebuilt] == [
            t.name for t in analyzer.tiers
        ]

    def test_unknown_tier_name_raises(self):
        from repro.errors import SchedError

        with pytest.raises(SchedError, match="unknown portfolio tier"):
            tiers_from_token("rta+nonsense")


class TestPortfolioAnalysis:
    def test_schedulable_decided_without_exploration(self):
        result = analyze_portfolio(two_periodic_threads())
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.decided_by == "utilization-bound"
        assert result.num_states == 0
        assert result.exploration.stats.strategy == "portfolio"

    def test_unschedulable_witness_matches_exploration(self):
        instance = two_periodic_threads(schedulable=False)
        portfolio = analyze_portfolio(instance)
        exploration = analyze_model(instance)
        assert portfolio.verdict is Verdict.UNSCHEDULABLE
        assert portfolio.decided_by == "utilization-cap"
        assert portfolio.scenario is not None
        assert exploration.scenario is not None
        assert set(portfolio.scenario.misses) == set(
            exploration.scenario.misses
        )

    def test_sufficient_fail_escalates_within_chain(self):
        """The hyperbolic bound fails at U = 1.0 but RTA still decides
        analytically -- escalation inside the chain, not to the engine."""
        instance = _single_cpu_system(
            [
                {"name": "a", "wcet": 3, "period": 4, "priority": 2},
                {"name": "b", "wcet": 2, "period": 8, "priority": 1},
            ]
        )
        result = analyze_portfolio(instance)
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.decided_by == "rta"

    def test_undecidable_unit_escalates_to_exploration(self):
        """LLF units: no analytic tier speaks (bounds and demand are
        inapplicable, simulation excludes LLF) -- the portfolio must
        fall through to exhaustive exploration and still agree."""
        instance = _single_cpu_system(
            [
                {"name": "a", "wcet": 1, "period": 4},
                {"name": "b", "wcet": 2, "period": 8},
            ],
            scheduling=SchedulingProtocol.LEAST_LAXITY_FIRST,
        )
        result = analyze_portfolio(instance)
        assert result.decided_by == "exploration"
        assert result.num_states > 0
        assert (
            result.verdict is analyze_model(instance).verdict
        )

    def test_inapplicable_model_escalates(self):
        """Outside the classical fragment the tiers stand aside."""
        instance = sporadic_consumer()
        result = analyze_portfolio(instance)
        assert result.decided_by == "exploration"
        assert result.tier_trail
        assert "escalated" in result.tier_trail[-1]
        assert result.verdict is analyze_model(instance).verdict

    def test_escalation_counters_on_stats(self):
        result = analyze_portfolio(sporadic_consumer())
        stats = result.exploration.stats
        assert stats.tier_escalations == 1

    def test_offset_model_decided_by_simulation(self):
        """Offsets past RTA's reach land in the simulation tier over
        the Leung-Merrill window: U = 0.875 clears the cap, RTA fails
        on the constrained deadline but may not conclude with offsets."""
        instance = _single_cpu_system(
            [
                {"name": "a", "wcet": 2, "period": 4, "priority": 2},
                {
                    "name": "b",
                    "wcet": 3,
                    "period": 8,
                    "deadline": 6,
                    "priority": 1,
                    "offset": 2,
                },
            ]
        )
        result = analyze_portfolio(instance)
        assert result.decided_by == "simulation"
        assert result.verdict is analyze_model(instance).verdict


class TestPortfolioCli:
    @pytest.fixture()
    def schedulable_file(self, tmp_path):
        path = tmp_path / "ok.aadl"
        path.write_text(format_model(two_periodic_threads().declarative))
        return str(path)

    @pytest.fixture()
    def unschedulable_file(self, tmp_path):
        path = tmp_path / "bad.aadl"
        path.write_text(
            format_model(
                two_periodic_threads(schedulable=False).declarative
            )
        )
        return str(path)

    def test_analyze_portfolio_prints_deciding_tier(
        self, schedulable_file, capsys
    ):
        assert main(["analyze", schedulable_file, "--portfolio"]) == 0
        out = capsys.readouterr().out
        assert "decided by: utilization-bound" in out
        assert "states explored: 0" in out

    def test_analyze_no_portfolio_explores(self, schedulable_file, capsys):
        assert main(["analyze", schedulable_file, "--no-portfolio"]) == 0
        out = capsys.readouterr().out
        assert "decided by:" not in out

    def test_portfolio_unschedulable_exit_code_and_scenario(
        self, unschedulable_file, capsys
    ):
        assert main(["analyze", unschedulable_file, "--portfolio"]) == 1
        out = capsys.readouterr().out
        assert "decided by: utilization-cap" in out
        assert "deadline" in out  # the synthesized witness renders

    def test_stats_print_tier_counters(self, schedulable_file, capsys):
        assert (
            main(["analyze", schedulable_file, "--portfolio", "--stats"])
            == 0
        )
        out = capsys.readouterr().out
        assert "portfolio tiers:" in out
        assert "utilization-bound: 1 attempt(s), 1 hit(s)" in out
        assert "escalated to exploration: 0" in out

    def test_portfolio_all_modes_needs_a_modal_root(
        self, schedulable_file, capsys
    ):
        """--portfolio composes with --all-modes now (each steady mode
        reuses the tier chain); a modeless root is still an error."""
        assert (
            main(
                ["analyze", schedulable_file, "--portfolio", "--all-modes"]
            )
            == 2
        )
        assert "declares no modes" in capsys.readouterr().err

    def test_batch_run_portfolio_job(
        self, schedulable_file, unschedulable_file, capsys
    ):
        assert (
            main(
                [
                    "batch",
                    "run",
                    schedulable_file,
                    unschedulable_file,
                    "--portfolio",
                    "--jobs",
                    "1",
                    "--stats",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "portfolio tiers:" in out
        assert "0 states" in out

    def test_compose_portfolio_screens_islands(self, tmp_path, capsys):
        from repro.aadl.gallery import dual_island

        path = tmp_path / "dual.aadl"
        path.write_text(format_model(dual_island().declarative))
        assert (
            main(
                ["analyze", str(path), "--compose", "--portfolio"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "compose: 2 islands (0 states total)" in out


class TestStatsPlumbing:
    @staticmethod
    def _stats(**overrides):
        from repro.engine.stats import EngineStats

        base = dict(
            strategy="portfolio",
            states=0,
            transitions=0,
            expanded=0,
            elapsed=0.0,
            frontier_peak=0,
            parent_map_bytes=0,
            cache_hits=0,
            cache_misses=0,
            cache_evictions=0,
            limit_hit=None,
        )
        base.update(overrides)
        return EngineStats(**base)

    def test_tier_counters_roundtrip_and_aggregate(self):
        from repro.engine.stats import EngineStats

        first = self._stats(
            tier_attempts={"rta": 1}, tier_hits={"rta": 1}
        )
        second = self._stats(
            tier_attempts={"rta": 1, "simulation": 1},
            tier_escalations=1,
        )
        restored = EngineStats.from_dict(first.as_dict())
        assert restored.tier_attempts == {"rta": 1}
        total = EngineStats.aggregate([restored, second])
        assert total.tier_attempts == {"rta": 2, "simulation": 1}
        assert total.tier_hits == {"rta": 1}
        assert total.tier_escalations == 1
        assert "portfolio tiers:" in total.format()

    def test_portfolio_spans_exported(self):
        from repro.obs import PORTFOLIO_STAGES

        assert "portfolio.escalate" in PORTFOLIO_STAGES
