"""Tests of the state-space explorer."""

import pytest

from repro.errors import ExplorationLimitError
from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    guard,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    send,
)
from repro.acsr.expressions import var
from repro.versa import Explorer


@pytest.fixture
def counter_env():
    """Count(n): n goes 0..4 then deadlocks."""
    env = ProcessEnv()
    n = var("n")
    env.define(
        "Count",
        ("n",),
        guard(n < 4, action({"cpu": 1}) >> proc("Count", n + 1)),
    )
    return env


class TestBasicExploration:
    def test_counts_states(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run()
        assert result.num_states == 5
        assert result.num_transitions == 4
        assert result.completed

    def test_detects_deadlock(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run()
        assert result.deadlock_states == [proc("Count", 4)]
        assert not result.deadlock_free

    def test_cycle_is_deadlock_free(self):
        env = ProcessEnv()
        env.define("Loop", (), idle() >> proc("Loop"))
        result = Explorer(env.close(proc("Loop"))).run()
        assert result.num_states == 1
        assert result.deadlock_free

    def test_trace_to_deadlock(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run()
        trace = result.first_deadlock_trace()
        assert trace is not None
        assert len(trace) == 4
        assert trace.duration == 4
        assert trace.final_state is proc("Count", 4)

    def test_trace_to_unknown_state_raises(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run()
        with pytest.raises(KeyError):
            result.trace_to(proc("Count", 99))

    def test_stop_at_first_deadlock(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run(stop_at_first_deadlock=True)
        assert result.deadlock_states
        assert not result.completed


class TestBudgets:
    def test_state_budget_raises(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        with pytest.raises(ExplorationLimitError) as excinfo:
            Explorer(system, max_states=2).run()
        assert excinfo.value.states_explored == 2

    def test_state_budget_truncates(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system, max_states=2, on_limit="truncate").run()
        assert result.num_states == 2
        assert not result.completed

    def test_invalid_on_limit(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        with pytest.raises(ValueError):
            Explorer(system, on_limit="ignore")


class TestTargets:
    def test_target_collection(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run(
            target=lambda t: t is proc("Count", 2)
        )
        assert result.target_states == [proc("Count", 2)]

    def test_stop_at_target(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run(
            target=lambda t: t is proc("Count", 2), stop_at_target=True
        )
        assert result.target_states == [proc("Count", 2)]
        trace = result.trace_to(proc("Count", 2))
        assert len(trace) == 2

    def test_initial_state_can_match(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run(
            target=lambda t: t is proc("Count", 0), stop_at_target=True
        )
        assert result.target_states == [proc("Count", 0)]


class TestBfsShortestCounterexample:
    def test_shortest_deadlock_found_first(self):
        """Two paths to deadlock: length 1 and length 3; BFS returns the
        short one."""
        env = ProcessEnv()
        env.define(
            "Start",
            (),
            choice(
                action({"cpu": 1}) >> nil(),
                action({"bus": 1})
                >> (action({"bus": 1}) >> (action({"bus": 1}) >> nil())),
            ),
        )
        system = env.close(proc("Start"))
        result = Explorer(system).run(stop_at_first_deadlock=True)
        trace = result.first_deadlock_trace()
        assert len(trace) == 1


class TestPrioritizedVsUnprioritized:
    def test_ablation_space_sizes(self):
        """The prioritized relation prunes dominated interleavings; the
        unprioritized space is at least as large (DESIGN.md T-PRIO)."""
        env = ProcessEnv()
        env.define(
            "Hi",
            (),
            choice(action({"cpu": 2}) >> proc("Hi"), idle() >> proc("Hi")),
        )
        env.define(
            "Lo",
            (),
            choice(action({"cpu": 1}) >> proc("Lo"), idle() >> proc("Lo")),
        )
        system = env.close(parallel(proc("Hi"), proc("Lo")))
        pri = Explorer(system, prioritized=True).run()
        unpri = Explorer(system, prioritized=False).run()
        assert pri.num_transitions < unpri.num_transitions
        assert pri.num_states <= unpri.num_states


class TestTransitionStorage:
    def test_stored_transitions(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system, store_transitions=True).run()
        steps = result.transitions_of(proc("Count", 0))
        assert len(steps) == 1

    def test_unavailable_without_flag(self, counter_env):
        system = counter_env.close(proc("Count", 0))
        result = Explorer(system).run()
        with pytest.raises(ValueError):
            result.transitions_of(proc("Count", 0))
