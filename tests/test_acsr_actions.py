"""Unit tests for timed actions and resources."""

import pytest

from repro.errors import AcsrSemanticsError
from repro.acsr.expressions import var
from repro.acsr.resources import Action, EMPTY_ACTION, make_action


class TestConstruction:
    def test_interning(self):
        assert Action([("cpu", 1)]) is Action([("cpu", 1)])

    def test_order_insensitive(self):
        a = Action([("cpu", 1), ("bus", 2)])
        b = Action([("bus", 2), ("cpu", 1)])
        assert a is b

    def test_empty_is_idle(self):
        assert Action(()).is_idle
        assert Action(()) is EMPTY_ACTION

    def test_duplicate_resource_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            Action([("cpu", 1), ("cpu", 2)])

    def test_negative_priority_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            Action([("cpu", -1)])

    def test_bool_priority_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            Action([("cpu", True)])

    def test_empty_resource_name_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            Action([("", 1)])

    def test_make_action_from_mapping(self):
        assert make_action({"cpu": 2}) is Action([("cpu", 2)])

    def test_make_action_string_priority_becomes_param(self):
        act = make_action({"cpu": "p"})
        assert not act.is_ground


class TestAccessors:
    def test_resources(self):
        act = Action([("cpu", 1), ("bus", 2)])
        assert act.resources == frozenset({"cpu", "bus"})

    def test_priority_of_present(self):
        assert Action([("cpu", 3)]).priority_of("cpu") == 3

    def test_priority_of_absent_is_zero(self):
        # The 0-for-absent convention underlies the preemption relation.
        assert Action([("cpu", 3)]).priority_of("bus") == 0

    def test_contains_and_len(self):
        act = Action([("cpu", 1)])
        assert "cpu" in act
        assert "bus" not in act
        assert len(act) == 1

    def test_is_ground(self):
        assert Action([("cpu", 1)]).is_ground
        assert not Action([("cpu", var("p"))]).is_ground

    def test_symbolic_priority_of_raises(self):
        act = Action([("cpu", var("p"))])
        with pytest.raises(AcsrSemanticsError):
            act.priority_of("cpu")


class TestAlgebra:
    def test_union_disjoint(self):
        merged = Action([("cpu", 1)]).union(Action([("bus", 2)]))
        assert merged is Action([("cpu", 1), ("bus", 2)])

    def test_union_overlap_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            Action([("cpu", 1)]).union(Action([("cpu", 2)]))

    def test_disjoint_predicate(self):
        assert Action([("cpu", 1)]).disjoint(Action([("bus", 1)]))
        assert not Action([("cpu", 1)]).disjoint(Action([("cpu", 2)]))

    def test_idle_disjoint_with_everything(self):
        assert EMPTY_ACTION.disjoint(Action([("cpu", 1)]))

    def test_closed_over_adds_zero_claims(self):
        closed = Action([("cpu", 1)]).closed_over({"cpu", "bus"})
        assert closed is Action([("cpu", 1), ("bus", 0)])

    def test_closed_over_noop_when_covered(self):
        act = Action([("cpu", 1)])
        assert act.closed_over({"cpu"}) is act


class TestInstantiate:
    def test_ground_passthrough(self):
        act = Action([("cpu", 1)])
        assert act.instantiate({}) is act

    def test_symbolic_evaluates(self):
        act = Action([("cpu", var("p") + 1)])
        assert act.instantiate({"p": 2}) is Action([("cpu", 3)])

    def test_negative_result_rejected(self):
        act = Action([("cpu", var("p") - 5)])
        with pytest.raises(AcsrSemanticsError):
            act.instantiate({"p": 2})

    def test_free_params(self):
        act = Action([("cpu", var("p")), ("bus", 1)])
        assert act.free_params() == frozenset({"p"})
