"""The portfolio ≡ exploration oracle relation and its CLI entry."""

import pytest

from repro.cli import main
from repro.oracle import (
    AgreementStatus,
    evaluate_portfolio_case,
    run_portfolio_campaign,
)


class TestPortfolioCase:
    def test_case_is_seed_reproducible(self):
        first = evaluate_portfolio_case(7, 7)
        second = evaluate_portfolio_case(7, 7)
        assert first.status is second.status
        assert first.portfolio_verdict is second.portfolio_verdict
        assert first.decided_by == second.decided_by

    def test_outcome_records_deciding_tier(self):
        outcome = evaluate_portfolio_case(0, 0)
        assert outcome.decided_by is not None
        assert outcome.status is not AgreementStatus.DISAGREED


class TestPortfolioCampaign:
    @pytest.fixture(scope="class")
    def smoke_report(self):
        # The 50-seed regression the issue pins: portfolio and pure
        # exploration must agree on every seed.
        return run_portfolio_campaign(seeds=50, base_seed=0)

    def test_fifty_seed_regression_agrees(self, smoke_report):
        assert len(smoke_report.outcomes) == 50
        assert smoke_report.disagreements == []

    def test_analytic_tiers_carry_the_load(self, smoke_report):
        """The acceptance bar: at least half the verdicts must come
        from analytic tiers with zero states explored."""
        analytic = smoke_report.analytic
        assert len(analytic) >= 25
        assert all(o.portfolio_states == 0 for o in analytic)

    def test_histogram_and_format(self, smoke_report):
        histogram = smoke_report.tier_histogram()
        assert sum(histogram.values()) == 50
        text = smoke_report.format()
        assert "50 case(s)" in text
        assert "decided by:" in text
        assert "disagreed: 0" in text


class TestPortfolioOracleCli:
    def test_oracle_portfolio_command(self, capsys):
        assert (
            main(
                [
                    "oracle",
                    "portfolio",
                    "--seeds",
                    "6",
                    "--base-seed",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "portfolio campaign: 6 case(s)" in out
        assert "disagreed: 0" in out
