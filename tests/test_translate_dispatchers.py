"""Behavioural tests of the dispatcher processes (Figure 6)."""

import pytest

from repro.errors import TranslationError
from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    guard,
    idle,
    parallel,
    proc,
    recv,
    restrict,
    send,
)
from repro.acsr.events import EventLabel
from repro.acsr.expressions import var
from repro.aadl.properties import DispatchProtocol
from repro.translate.dispatchers import build_dispatcher
from repro.translate.names import NameTable
from repro.translate.quantum import QuantizedTiming
from repro.versa import Explorer, find_deadlock


def thread_stub(env, compute_quanta):
    """A stub skeleton: dispatch? -> compute N quanta -> done! -> repeat."""
    e = var("e")
    env.define(
        "AD$sys_t",
        (),
        choice(
            recv("dispatch$sys_t", 1).then(proc("Cstub", 0)),
            idle().then(proc("AD$sys_t")),
        ),
    )
    env.define(
        "Cstub",
        ("e",),
        choice(
            guard(
                e < compute_quanta,
                action({"cpu": 1}) >> proc("Cstub", e + 1),
            ),
            guard(
                e.eq(compute_quanta),
                send("done$sys_t", 0) >> proc("AD$sys_t"),
            ),
        ),
    )
    return proc("AD$sys_t")


def close_system(env, dispatcher_name, extra=()):
    skeleton = proc("AD$sys_t")
    refs = [skeleton, proc(dispatcher_name)] + list(extra)
    restricted = ["dispatch$sys_t", "done$sys_t", "q$c", "dq$c"]
    return env.close(restrict(parallel(*refs), restricted))


class TestPeriodic:
    def build(self, period, deadline, compute):
        env = ProcessEnv()
        table = NameTable()
        thread_stub(env, compute)
        name, _init = build_dispatcher(
            env,
            table,
            "sys.t",
            DispatchProtocol.PERIODIC,
            QuantizedTiming(compute, compute, deadline, period, True),
        )
        return env, name

    def test_initial_state_cannot_idle(self):
        """Fig 6a: the dispatcher has to send dispatch immediately."""
        env, name = self.build(4, 4, 1)
        steps = env.close(proc(name), validate=False).steps()
        assert len(steps) == 1
        label = steps[0][0]
        assert isinstance(label, EventLabel) and label.name == "dispatch$sys_t"

    def test_meets_deadline_is_deadlock_free(self):
        env, name = self.build(period=4, deadline=4, compute=2)
        system = close_system(env, name)
        result = Explorer(system).run()
        assert result.deadlock_free

    def test_period_respected(self):
        """Dispatch happens exactly every P quanta."""
        env, name = self.build(period=3, deadline=3, compute=1)
        system = close_system(env, name)
        result = Explorer(system, store_transitions=True).run()
        dispatch_times = set()
        for state in result.states():
            for label, _ in result.transitions_of(state):
                if (
                    isinstance(label, EventLabel)
                    and label.via == "dispatch$sys_t"
                ):
                    dispatch_times.add(result.trace_to(state).duration % 3)
        assert dispatch_times == {0}

    def test_deadline_violation_deadlocks(self):
        """Compute exceeds the deadline: the dispatcher blocks (Fig 6a
        timeout -> Violation)."""
        env, name = self.build(period=4, deadline=2, compute=3)
        system = close_system(env, name)
        trace = find_deadlock(system)
        assert trace is not None
        assert trace.duration == 2  # blocked exactly at the deadline

    def test_completion_at_deadline_equal_period(self):
        """D == P and execution takes the full period: legal, tight."""
        env, name = self.build(period=2, deadline=2, compute=2)
        system = close_system(env, name)
        assert Explorer(system).run().deadlock_free

    def test_missing_period_rejected(self):
        env = ProcessEnv()
        with pytest.raises(TranslationError):
            build_dispatcher(
                env,
                NameTable(),
                "sys.t",
                DispatchProtocol.PERIODIC,
                QuantizedTiming(1, 1, 4, None, True),
            )


class TestAperiodic:
    def build(self, deadline, compute, protocol=DispatchProtocol.APERIODIC):
        env = ProcessEnv()
        table = NameTable()
        thread_stub(env, compute)
        name, _init = build_dispatcher(
            env,
            table,
            "sys.t",
            protocol,
            QuantizedTiming(compute, compute, deadline, None, True),
            dequeues=[("dq$c", 1)],
        )
        return env, name

    def test_can_idle_awaiting_event(self):
        """Fig 6b: unlike the periodic dispatcher, idling is allowed."""
        env, name = self.build(deadline=4, compute=1)
        steps = env.close(proc(name), validate=False).steps()
        labels = {str(label) for label, _ in steps}
        assert "idle" in labels
        assert "(dq$c?,1)" in labels

    def test_event_triggers_dispatch(self):
        env, name = self.build(deadline=4, compute=1)
        # Environment: a single event source.
        env.define("Src", (), send("q$c", 0) >> proc("SrcIdle"))
        env.define("SrcIdle", (), idle() >> proc("SrcIdle"))
        n = var("n")
        env.define(
            "Q",
            ("n",),
            choice(
                guard(n < 1, recv("q$c", 0).then(proc("Q", n + 1))),
                guard(n.eq(1), recv("q$c", 0).then(proc("Q", n))),
                guard(n > 0, send("dq$c", 1) >> proc("Q", n - 1)),
                idle().then(proc("Q", n)),
            ),
        )
        system = close_system(env, name, extra=[proc("Src"), proc("Q", 0)])
        result = Explorer(system, store_transitions=True).run()
        assert result.deadlock_free
        vias = {
            label.via
            for state in result.states()
            for label, _ in result.transitions_of(state)
            if isinstance(label, EventLabel) and label.is_tau
        }
        assert {"q$c", "dq$c", "dispatch$sys_t", "done$sys_t"} <= vias

    def test_background_uses_aperiodic_dispatcher(self):
        env, name = self.build(
            deadline=4, compute=1, protocol=DispatchProtocol.BACKGROUND
        )
        assert name.startswith("DA$")

    def test_requires_incoming_connection(self):
        env = ProcessEnv()
        with pytest.raises(TranslationError):
            build_dispatcher(
                env,
                NameTable(),
                "sys.t",
                DispatchProtocol.APERIODIC,
                QuantizedTiming(1, 1, 4, None, True),
                dequeues=[],
            )


class TestSporadic:
    def build(self, period, deadline, compute):
        env = ProcessEnv()
        table = NameTable()
        thread_stub(env, compute)
        name, _init = build_dispatcher(
            env,
            table,
            "sys.t",
            DispatchProtocol.SPORADIC,
            QuantizedTiming(compute, compute, deadline, period, True),
            dequeues=[("dq$c", 1)],
        )
        return env, name

    def test_minimum_separation_enforced(self):
        """Fig 6c: with a saturating event source, consecutive dispatches
        are at least P quanta apart."""
        env, name = self.build(period=3, deadline=2, compute=1)
        # Source that always offers events; queue of size 1 that drops.
        env.define(
            "Src",
            (),
            choice(
                send("q$c", 0) >> proc("Src"),
                idle().then(proc("Src")),
            ),
        )
        n = var("n")
        env.define(
            "Q",
            ("n",),
            choice(
                guard(n < 1, recv("q$c", 0).then(proc("Q", n + 1))),
                guard(n.eq(1), recv("q$c", 0).then(proc("Q", n))),
                guard(n > 0, send("dq$c", 1) >> proc("Q", n - 1)),
                idle().then(proc("Q", n)),
            ),
        )
        system = close_system(env, name, extra=[proc("Src"), proc("Q", 0)])
        result = Explorer(
            system, store_transitions=True, max_states=100_000
        ).run()
        assert result.deadlock_free
        # Collect dispatch times along every edge: since state includes
        # the separation counter, two dispatches < P apart would deadlock
        # or appear as a dispatch at depth k with k % ... -- instead
        # verify directly: from any state reached right after a dispatch,
        # no second dispatch is reachable in fewer than P timed steps.
        import collections

        for state in result.states():
            for label, succ in result.transitions_of(state):
                if not (
                    isinstance(label, EventLabel)
                    and label.via == "dispatch$sys_t"
                ):
                    continue
                # BFS from succ counting timed steps to the next dispatch.
                queue = collections.deque([(succ, 0)])
                seen = {succ}
                while queue:
                    current, depth = queue.popleft()
                    for lab, nxt in result.transitions_of(current):
                        is_dispatch = (
                            isinstance(lab, EventLabel)
                            and lab.via == "dispatch$sys_t"
                        )
                        if is_dispatch:
                            assert depth >= 3, "separation violated"
                            continue
                        if nxt not in seen and depth < 3:
                            seen.add(nxt)
                            timed = 0 if isinstance(lab, EventLabel) else 1
                            queue.append((nxt, depth + timed))

    def test_missing_separation_rejected(self):
        env = ProcessEnv()
        with pytest.raises(TranslationError):
            build_dispatcher(
                env,
                NameTable(),
                "sys.t",
                DispatchProtocol.SPORADIC,
                QuantizedTiming(1, 1, 4, None, True),
                dequeues=[("dq$c", 1)],
            )
