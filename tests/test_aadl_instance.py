"""Tests of instantiation, semantic connections and bindings."""

import pytest

from repro.errors import (
    AadlInstantiationError,
    AadlNameError,
    AadlPropertyError,
)
from repro.aadl import parse_model, instantiate
from repro.aadl.components import ComponentCategory
from repro.aadl.features import PortKind
from repro.aadl.gallery import cruise_control
from repro.aadl.properties import ms


BASE = """
processor CPU
  properties
    Scheduling_Protocol => RMS;
end CPU;

thread Producer
  features
    outp: out data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Compute_Deadline => 10 ms;
end Producer;

thread Consumer
  features
    inp: in data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Compute_Deadline => 10 ms;
end Consumer;

system S
end S;

system implementation S.impl
  subcomponents
    p: thread Producer;
    c: thread Consumer;
    cpu: processor CPU;
  connections
    c1: port p.outp -> c.inp;
  properties
    Actual_Processor_Binding => reference(cpu) applies to p;
    Actual_Processor_Binding => reference(cpu) applies to c;
end S.impl;
"""


class TestInstanceTree:
    def test_root_and_children(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        assert inst.qualified_name == "S"
        assert set(inst.children) == {"p", "c", "cpu"}
        assert inst.child("p").category is ComponentCategory.THREAD

    def test_category_queries(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        assert len(inst.threads()) == 2
        assert len(inst.processors()) == 1
        assert inst.buses() == []

    def test_root_name_override(self):
        inst = instantiate(parse_model(BASE), "S.impl", root_name="plant")
        assert inst.qualified_name == "plant"

    def test_non_system_root_rejected(self):
        model = parse_model(
            BASE + "\nprocess P end P;\nprocess implementation P.i end P.i;"
        )
        with pytest.raises(AadlInstantiationError):
            instantiate(model, "P.i")

    def test_unknown_child_raises(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        with pytest.raises(AadlNameError):
            inst.child("ghost")

    def test_category_mismatch_rejected(self):
        src = BASE.replace("p: thread Producer;", "p: device Producer;")
        with pytest.raises(AadlInstantiationError):
            instantiate(parse_model(src), "S.impl")

    def test_feature_instances(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        feature = inst.child("p").feature("outp")
        assert feature.qualified_name == "S.p.outp"


class TestPropertyLookup:
    def test_type_property_visible_on_instance(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        assert inst.child("p").property_time("period") == ms(10)

    def test_subcomponent_decl_overrides_type(self):
        src = BASE.replace(
            "p: thread Producer;",
            "p: thread Producer { Period => 20 ms; };",
        )
        inst = instantiate(parse_model(src), "S.impl")
        assert inst.child("p").property_time("period") == ms(20)

    def test_contained_association_overrides_all(self):
        src = BASE.replace(
            "Actual_Processor_Binding => reference(cpu) applies to p;",
            "Actual_Processor_Binding => reference(cpu) applies to p;\n"
            "    Period => 40 ms applies to p;",
        )
        inst = instantiate(parse_model(src), "S.impl")
        assert inst.child("p").property_time("period") == ms(40)

    def test_typed_getters_reject_wrong_types(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        thread = inst.child("p")
        with pytest.raises(AadlPropertyError):
            thread.property_int("period")
        with pytest.raises(AadlPropertyError):
            thread.property_time("dispatch_protocol")

    def test_missing_property_is_none(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        assert inst.child("p").property("priority") is None

    def test_time_range_promotes_single_value(self):
        src = BASE.replace(
            "Compute_Execution_Time => 1 ms .. 1 ms;",
            "Compute_Execution_Time => 1 ms;",
            1,
        )
        inst = instantiate(parse_model(src), "S.impl")
        value = inst.child("p").property_time_range("compute_execution_time")
        assert value.low == value.high == ms(1)


class TestSemanticConnections:
    def test_sibling_connection(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        assert len(inst.connections) == 1
        conn = inst.connections[0]
        assert conn.source.qualified_name == "S.p.outp"
        assert conn.destination.qualified_name == "S.c.inp"
        assert conn.kind is PortKind.DATA
        assert len(conn.syntactic) == 1

    def test_hierarchical_connection_three_hops(self):
        cc = cruise_control()
        ref_to_cruise = [
            c
            for c in cc.connections
            if c.source.qualified_name.endswith("refspeed.speed")
        ]
        assert len(ref_to_cruise) == 1
        conn = ref_to_cruise[0]
        # Paper S2: up, sibling, down = three syntactic connections.
        assert len(conn.syntactic) == 3
        assert conn.destination.qualified_name.endswith("cruise1.speed")

    def test_connections_from_to(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        producer = inst.child("p")
        consumer = inst.child("c")
        assert len(inst.connections_from(producer)) == 1
        assert len(inst.connections_to(consumer)) == 1
        assert inst.connections_from(consumer) == []

    def test_fanout_creates_two_semantic_connections(self):
        src = BASE.replace(
            "c: thread Consumer;",
            "c: thread Consumer;\n    c2: thread Consumer;",
        ).replace(
            "c1: port p.outp -> c.inp;",
            "c1: port p.outp -> c.inp;\n    c2x: port p.outp -> c2.inp;",
        ).replace(
            "Actual_Processor_Binding => reference(cpu) applies to c;",
            "Actual_Processor_Binding => reference(cpu) applies to c;\n"
            "    Actual_Processor_Binding => reference(cpu) applies to c2;",
        )
        inst = instantiate(parse_model(src), "S.impl")
        assert len(inst.connections) == 2

    def test_connection_to_unknown_port_rejected(self):
        src = BASE.replace("port p.outp -> c.inp", "port p.ghost -> c.inp")
        with pytest.raises(AadlInstantiationError):
            instantiate(parse_model(src), "S.impl")


class TestBindings:
    def test_processor_binding_resolved(self):
        inst = instantiate(parse_model(BASE), "S.impl")
        cpu = inst.child("cpu")
        assert inst.child("p").bound_processor is cpu
        assert inst.child("c").bound_processor is cpu

    def test_unbound_thread_is_none(self):
        src = BASE.replace(
            "Actual_Processor_Binding => reference(cpu) applies to p;", ""
        )
        inst = instantiate(parse_model(src), "S.impl")
        assert inst.child("p").bound_processor is None

    def test_binding_to_non_processor_rejected(self):
        src = BASE.replace(
            "Actual_Processor_Binding => reference(cpu) applies to p;",
            "Actual_Processor_Binding => reference(c) applies to p;",
        )
        with pytest.raises(AadlPropertyError):
            instantiate(parse_model(src), "S.impl")

    def test_bus_binding(self):
        cc = cruise_control()
        bus_bound = [c for c in cc.connections if c.buses]
        assert len(bus_bound) == 2
        assert all(
            b.qualified_name == "CruiseControl.net"
            for c in bus_bound
            for b in c.buses
        )


class TestModesFiltering:
    MODAL = """
    thread A
      features
        fail: out event port;
      properties
        Dispatch_Protocol => Periodic;
        Period => 10 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Compute_Deadline => 10 ms;
    end A;
    system S end S;
    system implementation S.impl
      subcomponents
        primary: thread A in modes (nominal);
        backup: thread A in modes (recovery);
        always: thread A;
      modes
        nominal: initial mode;
        recovery: mode;
        m1: nominal -[primary.fail]-> recovery;
    end S.impl;
    """

    def test_initial_mode_filters_subcomponents(self):
        inst = instantiate(parse_model(self.MODAL), "S.impl")
        assert set(inst.children) == {"primary", "always"}

    def test_two_initial_modes_rejected(self):
        src = self.MODAL.replace(
            "recovery: mode;", "recovery: initial mode;"
        )
        from repro.errors import AadlError

        with pytest.raises(AadlError):
            instantiate(parse_model(src), "S.impl")


class TestDirectionLegality:
    def test_out_to_out_sibling_rejected(self):
        src = BASE.replace(
            "c1: port p.outp -> c.inp;", "c1: port c.inp -> p.outp;"
        )
        with pytest.raises(AadlInstantiationError):
            instantiate(parse_model(src), "S.impl")

    def test_in_port_of_owner_is_legal_source(self):
        # Descending connection: self.in -> sub.in (cruise control uses
        # these; reconfirm explicitly).
        from repro.aadl.gallery import cruise_control

        cc = cruise_control()
        descending = [
            (owner, conn)
            for sem in cc.connections
            for owner, conn in sem.syntactic
            if conn.source.is_self
        ]
        assert descending  # hc4 / cc1 / cc2 style hops exist

    def test_fan_in_two_semantic_connections(self):
        src = BASE.replace(
            "p: thread Producer;",
            "p: thread Producer;\n    p2: thread Producer;",
        ).replace(
            "c1: port p.outp -> c.inp;",
            "c1: port p.outp -> c.inp;\n    c2: port p2.outp -> c.inp;",
        ).replace(
            "Actual_Processor_Binding => reference(cpu) applies to p;",
            "Actual_Processor_Binding => reference(cpu) applies to p;\n"
            "    Actual_Processor_Binding => reference(cpu) applies to p2;",
        )
        inst = instantiate(parse_model(src), "S.impl")
        assert len(inst.connections) == 2
        assert {
            c.destination.qualified_name for c in inst.connections
        } == {"S.c.inp"}
