"""Tests of the fluent SystemBuilder and the gallery models."""

import pytest

from repro.errors import AadlError, AadlNameError
from repro.aadl.builder import SystemBuilder
from repro.aadl.features import PortKind
from repro.aadl.gallery import (
    aperiodic_worker,
    cruise_control,
    shared_bus_pair,
    sporadic_consumer,
    two_periodic_threads,
)
from repro.aadl.properties import (
    DispatchProtocol,
    OverflowHandlingProtocol,
    SchedulingProtocol,
    ms,
)


class TestBuilder:
    def test_minimal_system(self):
        b = SystemBuilder("Mini")
        cpu = b.processor("cpu")
        b.thread(
            "t",
            dispatch="periodic",
            period=ms(10),
            compute_time=ms(2),
            deadline=ms(10),
            processor=cpu,
        )
        inst = b.instantiate()
        assert len(inst.threads()) == 1
        assert inst.threads()[0].bound_processor is inst.child("cpu")

    def test_int_times_are_milliseconds(self):
        b = SystemBuilder("Mini")
        cpu = b.processor("cpu")
        b.thread(
            "t",
            dispatch="periodic",
            period=10,
            compute_time=(1, 2),
            deadline=10,
            processor=cpu,
        )
        inst = b.instantiate()
        assert inst.threads()[0].property_time("period") == ms(10)

    def test_string_protocol_names(self):
        b = SystemBuilder("Mini")
        cpu = b.processor("cpu", scheduling="edf")
        thread = b.thread(
            "t",
            dispatch="sporadic",
            period=10,
            compute_time=1,
            deadline=10,
            processor=cpu,
        )
        thread.in_event_port("go")
        inst = b.instantiate(validate=False)
        assert (
            inst.child("cpu").property("scheduling_protocol")
            is SchedulingProtocol.EARLIEST_DEADLINE_FIRST
        )

    def test_connection_with_bus_and_urgency(self):
        b = SystemBuilder("Mini")
        cpu = b.processor("cpu")
        net = b.bus("net")
        p = b.thread(
            "p", dispatch="periodic", period=8, compute_time=1,
            deadline=8, processor=cpu,
        )
        p.out_event_port("evt")
        c = b.thread(
            "c", dispatch="aperiodic", compute_time=1, deadline=4,
            processor=cpu,
        )
        c.in_event_port("evt", queue_size=3)
        b.connect(p, "evt", c, "evt", bus=net, urgency=2)
        inst = b.instantiate()
        conn = inst.connections[0]
        assert conn.buses[0].qualified_name == "Mini.net"
        assert conn.connection_property("urgency") == 2
        assert conn.destination_port_property("queue_size") == 3

    def test_duplicate_thread_name_rejected(self):
        b = SystemBuilder("Mini")
        cpu = b.processor("cpu")
        b.thread(
            "t", dispatch="periodic", period=10, compute_time=1,
            deadline=10, processor=cpu,
        )
        with pytest.raises(AadlNameError):
            b.thread(
                "t", dispatch="periodic", period=10, compute_time=1,
                deadline=10, processor=cpu,
            )

    def test_bad_time_type_rejected(self):
        b = SystemBuilder("Mini")
        cpu = b.processor("cpu")
        with pytest.raises(AadlError):
            b.thread(
                "t", dispatch="periodic", period=1.5, compute_time=1,
                deadline=10, processor=cpu,
            )

    def test_port_kinds(self):
        b = SystemBuilder("Mini")
        cpu = b.processor("cpu")
        t = b.thread(
            "t", dispatch="periodic", period=10, compute_time=1,
            deadline=10, processor=cpu,
        )
        t.out_data_port("a").in_data_port("b").out_event_port("c")
        t.in_event_port("d").out_event_data_port("e").in_event_data_port("f")
        ctype = t.ctype
        assert ctype.feature("a").kind is PortKind.DATA
        assert ctype.feature("c").kind is PortKind.EVENT
        assert ctype.feature("e").kind is PortKind.EVENT_DATA


class TestGallery:
    def test_cruise_control_shape(self):
        cc = cruise_control()
        assert len(cc.threads()) == 6
        assert len(cc.processors()) == 2
        assert len(cc.buses()) == 1
        assert len(cc.connections) == 5

    def test_cruise_control_bus_mapped_sources(self):
        cc = cruise_control()
        # Paper S4.2: DriverModeLogic and RefSpeed have bus-mapped
        # outgoing data connections.
        bus_sources = {
            c.source.component.name for c in cc.connections if c.buses
        }
        assert bus_sources == {"drivermodelogic", "refspeed"}

    def test_cruise_control_all_data_connections(self):
        cc = cruise_control()
        assert all(c.kind is PortKind.DATA for c in cc.connections)

    def test_overloaded_variant_differs(self):
        nominal = cruise_control()
        overloaded = cruise_control(overloaded=True)
        get = lambda inst: inst.child("ccl").child("cruise1").property_time_range(
            "compute_execution_time"
        )
        assert get(overloaded).high > get(nominal).high

    def test_two_periodic_threads_variants(self):
        sched = two_periodic_threads(schedulable=True)
        unsched = two_periodic_threads(schedulable=False)
        assert len(sched.threads()) == 2
        total = lambda inst: sum(
            inst.threads()[i]
            .property_time_range("compute_execution_time")
            .high.picoseconds
            for i in range(2)
        )
        assert total(unsched) > total(sched)

    def test_sporadic_consumer_queue_properties(self):
        inst = sporadic_consumer(
            queue_size=3, overflow=OverflowHandlingProtocol.ERROR
        )
        conn = inst.connections[0]
        assert conn.destination_port_property("queue_size") == 3
        assert (
            conn.destination_port_property("overflow_handling_protocol")
            is OverflowHandlingProtocol.ERROR
        )

    def test_aperiodic_worker_protocols(self):
        inst = aperiodic_worker()
        protocols = {
            t.name: t.property("dispatch_protocol") for t in inst.threads()
        }
        assert protocols["driver"] is DispatchProtocol.PERIODIC
        assert protocols["worker"] is DispatchProtocol.APERIODIC

    def test_shared_bus_pair_cross_processor(self):
        inst = shared_bus_pair()
        assert len(inst.processors()) == 2
        bus_conns = [c for c in inst.connections if c.buses]
        assert len(bus_conns) == 2
        cpus = {
            c.source.component.bound_processor.qualified_name
            for c in bus_conns
        }
        assert len(cpus) == 2


class TestBuilderModes:
    def _modal(self):
        b = SystemBuilder("Modal")
        cpu = b.processor("cpu")
        b.mode("day", initial=True)
        b.mode("night")
        watcher = b.thread(
            "watcher",
            dispatch="periodic",
            period=ms(16),
            compute_time=ms(1),
            deadline=ms(16),
            processor=cpu,
        )
        watcher.out_event_port("dusk")
        b.thread(
            "lamp",
            dispatch="periodic",
            period=ms(8),
            compute_time=ms(2),
            deadline=ms(8),
            processor=cpu,
            in_modes=("night",),
        )
        b.mode_transition("day", "watcher.dusk", "night")
        return b

    def test_mode_declarations_land_on_the_impl(self):
        model = self._modal().declarative()
        impl = model.implementation("Modal.impl")
        assert impl.initial_mode().name == "day"
        assert len(impl.modes) == 2
        assert len(impl.mode_transitions) == 1
        assert impl.subcomponent("lamp").in_modes == ("night",)

    def test_in_modes_steers_instantiation(self):
        b = self._modal()
        day = b.instantiate()
        assert "lamp" not in day.children
        from repro.aadl import instantiate

        night = instantiate(
            b.declarative(), "Modal.impl",
            mode_overrides={"Modal.impl": "night"},
        )
        assert "lamp" in night.children

    def test_builder_modes_are_legal(self):
        from repro.aadl.validation import collect_mode_violations

        assert collect_mode_violations(self._modal().declarative()) == []
