"""Rule-by-rule tests of the unprioritized operational semantics."""

import pytest

from repro.errors import AcsrDefinitionError
from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    close,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    send,
    tau,
    transitions,
)
from repro.acsr.events import EventLabel
from repro.acsr.resources import Action
from repro.acsr.terms import NIL


def trans(term, env=None):
    return transitions(term, env or ProcessEnv())


class TestPrefixes:
    def test_nil_has_no_steps(self):
        assert trans(NIL) == ()

    def test_action_prefix_single_step(self):
        term = action({"cpu": 1}) >> nil()
        ((label, succ),) = trans(term)
        assert label is Action([("cpu", 1)])
        assert succ is NIL

    def test_event_prefix_single_step(self):
        term = send("done", 2) >> nil()
        ((label, succ),) = trans(term)
        assert isinstance(label, EventLabel)
        assert label.name == "done" and label.is_output
        assert succ is NIL

    def test_idle_step(self):
        ((label, _),) = trans(idle() >> nil())
        assert label.is_idle


class TestChoice:
    def test_union_of_summands(self):
        term = choice(
            action({"cpu": 1}) >> nil(),
            send("e", 1) >> nil(),
        )
        labels = {type(label) for label, _ in trans(term)}
        assert labels == {Action, EventLabel}

    def test_identical_summands_dedup(self):
        a = action({"cpu": 1}) >> nil()
        term = choice(a, a)
        assert len(trans(term)) == 1


class TestParallelEvents:
    def test_interleaving(self):
        term = parallel(send("a", 1) >> nil(), send("b", 1) >> nil())
        names = sorted(
            label.name for label, _ in trans(term)
            if isinstance(label, EventLabel)
        )
        assert names == ["a", "b"]

    def test_synchronization_produces_tau(self):
        term = parallel(send("e", 2) >> nil(), recv("e", 3) >> nil())
        taus = [label for label, _ in trans(term) if label.is_tau]
        assert len(taus) == 1
        assert taus[0].int_priority() == 5
        assert taus[0].via == "e"

    def test_unrestricted_events_also_step_individually(self):
        term = parallel(send("e", 1) >> nil(), recv("e", 1) >> nil())
        events = [
            label for label, _ in trans(term)
            if isinstance(label, EventLabel) and not label.is_tau
        ]
        assert len(events) == 2

    def test_three_way_sync_pairs_only(self):
        term = parallel(
            send("e", 1) >> nil(),
            recv("e", 1) >> proc("A"),
            recv("e", 1) >> proc("B"),
        )
        taus = [
            (label, succ)
            for label, succ in trans(term)
            if getattr(label, "is_tau", False)
        ]
        # Sender pairs with either receiver: two distinct tau successors.
        assert len(taus) == 2
        assert taus[0][1] is not taus[1][1]

    def test_identical_receivers_dedup(self):
        # Pairing with either of two identical receivers reaches the same
        # state; the transition relation contains it once.
        term = parallel(
            send("e", 1) >> nil(),
            recv("e", 1) >> nil(),
            recv("e", 1) >> nil(),
        )
        taus = [label for label, _ in trans(term) if getattr(label, "is_tau", False)]
        assert len(taus) == 1


class TestParallelTimed:
    def test_par3_joint_step_disjoint_resources(self):
        term = parallel(
            action({"cpu": 1}) >> nil(),
            action({"bus": 2}) >> nil(),
        )
        actions = [label for label, _ in trans(term) if isinstance(label, Action)]
        assert actions == [Action([("cpu", 1), ("bus", 2)])]

    def test_par3_conflicting_resources_blocked(self):
        term = parallel(
            action({"cpu": 1}) >> nil(),
            action({"cpu": 2}) >> nil(),
        )
        actions = [label for label, _ in trans(term) if isinstance(label, Action)]
        assert actions == []

    def test_time_blocked_by_component_without_timed_step(self):
        # "time progress is global": a component offering only an event
        # step stops the whole composition's clock.
        term = parallel(
            action({"cpu": 1}) >> nil(),
            send("e", 1) >> nil(),
        )
        actions = [label for label, _ in trans(term) if isinstance(label, Action)]
        assert actions == []

    def test_idle_alternative_restores_time_progress(self):
        term = parallel(
            action({"cpu": 1}) >> nil(),
            choice(send("e", 1) >> nil(), idle() >> nil()),
        )
        actions = [label for label, _ in trans(term) if isinstance(label, Action)]
        assert actions == [Action([("cpu", 1)])]

    def test_branching_product(self):
        two_way = choice(
            action({"cpu": 1}) >> nil(),
            idle() >> nil(),
        )
        term = parallel(two_way, action({"bus": 1}) >> nil())
        actions = {label for label, _ in trans(term) if isinstance(label, Action)}
        assert actions == {
            Action([("cpu", 1), ("bus", 1)]),
            Action([("bus", 1)]),
        }


class TestRestrict:
    def test_blocks_individual_steps(self):
        term = restrict(send("e", 1) >> nil(), ["e"])
        assert trans(term) == ()

    def test_tau_passes_through(self):
        inner = parallel(send("e", 1) >> nil(), recv("e", 1) >> nil())
        term = restrict(inner, ["e"])
        labels = [label for label, _ in trans(term)]
        assert len(labels) == 1
        assert labels[0].is_tau

    def test_unrelated_events_pass(self):
        term = restrict(send("f", 1) >> nil(), ["e"])
        assert len(trans(term)) == 1

    def test_successors_stay_restricted(self):
        term = restrict(idle() >> (send("e", 1) >> nil()), ["e"])
        ((_, succ),) = trans(term)
        assert trans(succ) == ()


class TestClose:
    def test_timed_steps_gain_zero_claims(self):
        term = close(action({"cpu": 1}) >> nil(), ["cpu", "bus"])
        ((label, _),) = trans(term)
        assert label is Action([("cpu", 1), ("bus", 0)])

    def test_closed_resource_excludes_sibling(self):
        term = parallel(
            close(idle() >> nil(), ["bus"]),
            action({"bus": 1}) >> nil(),
        )
        actions = [label for label, _ in trans(term) if isinstance(label, Action)]
        assert actions == []

    def test_events_unchanged(self):
        term = close(send("e", 1) >> nil(), ["cpu"])
        ((label, _),) = trans(term)
        assert isinstance(label, EventLabel)


class TestProcRef:
    def test_unfolds_definition(self, env):
        env.define("P", (), action({"cpu": 1}) >> proc("P"))
        ((label, succ),) = transitions(proc("P"), env)
        assert label is Action([("cpu", 1)])
        assert succ is proc("P")

    def test_parameterized_unfolding(self, env):
        from repro.acsr.expressions import var
        from repro.acsr.terms import guard

        n = var("n")
        env.define(
            "Count",
            ("n",),
            guard(n < 2, action({"cpu": 1}) >> proc("Count", n + 1)),
        )
        ((_, succ),) = transitions(proc("Count", 0), env)
        assert succ is proc("Count", 1)
        ((_, succ2),) = transitions(succ, env)
        assert succ2 is proc("Count", 2)
        assert transitions(succ2, env) == ()

    def test_unguarded_recursion_detected(self, env):
        env.define("X", (), choice(proc("X"), send("e", 1) >> nil()))
        with pytest.raises(AcsrDefinitionError):
            transitions(proc("X"), env)

    def test_unknown_process_raises(self, env):
        with pytest.raises(AcsrDefinitionError):
            transitions(proc("Missing"), env)


class TestSimpleSystem:
    def test_figure2_lifecycle(self, simple_system):
        """Figure 2: compute, compute+bus, handshake done, restart."""
        state = simple_system.root
        seen = []
        for _ in range(3):
            steps = simple_system.prioritized_steps(state)
            assert len(steps) == 1
            label, state = steps[0]
            seen.append(label)
        assert seen[0] is Action([("cpu", 1)])
        assert seen[1] is Action([("cpu", 1), ("bus", 1)])
        assert seen[2].is_tau and seen[2].via == "done"
        # After the handshake the system loops back to the start.
        assert state is simple_system.root
