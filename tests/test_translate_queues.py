"""Behavioural tests of connection queue processes (paper S4.4)."""

import pytest

from repro.errors import TranslationError
from repro.acsr import (
    ProcessEnv,
    choice,
    idle,
    parallel,
    proc,
    recv,
    restrict,
    send,
)
from repro.acsr.events import EventLabel
from repro.aadl.properties import OverflowHandlingProtocol
from repro.translate.names import NameTable
from repro.translate.queues import build_queue
from repro.versa import Explorer, find_deadlock, find_reachable
from repro.versa.queries import contains_proc


def build(size, overflow, urgency=1):
    env = ProcessEnv()
    table = NameTable()
    name = build_queue(
        env, table, "conn", size=size, overflow=overflow, urgency=urgency
    )
    return env, table, name


class TestCounter:
    def test_enqueue_increments(self):
        env, _, name = build(2, OverflowHandlingProtocol.DROP_NEWEST)
        system = env.close(proc(name, 0), validate=False)
        succ = {
            str(label): target for label, target in system.steps()
        }
        assert succ["(q$conn?,0)"] is proc(name, 1)

    def test_dequeue_decrements(self):
        env, _, name = build(2, OverflowHandlingProtocol.DROP_NEWEST)
        system = env.close(proc(name, 1), validate=False)
        succ = {str(label): target for label, target in system.steps()}
        assert succ["(dq$conn!,1)"] is proc(name, 0)

    def test_empty_queue_offers_no_dequeue(self):
        env, _, name = build(2, OverflowHandlingProtocol.DROP_NEWEST)
        system = env.close(proc(name, 0), validate=False)
        labels = {str(label) for label, _ in system.steps()}
        assert "(dq$conn!,1)" not in labels

    def test_idle_always_available(self):
        env, _, name = build(1, OverflowHandlingProtocol.DROP_NEWEST)
        for n in (0, 1):
            system = env.close(proc(name, n), validate=False)
            assert "idle" in {str(l) for l, _ in system.steps()}

    def test_urgency_on_dequeue(self):
        env, _, name = build(1, OverflowHandlingProtocol.DROP_NEWEST, urgency=3)
        system = env.close(proc(name, 1), validate=False)
        labels = {str(label) for label, _ in system.steps()}
        assert "(dq$conn!,3)" in labels


class TestOverflow:
    def test_drop_self_loop_at_capacity(self):
        env, _, name = build(1, OverflowHandlingProtocol.DROP_OLDEST)
        system = env.close(proc(name, 1), validate=False)
        succ = {str(label): target for label, target in system.steps()}
        assert succ["(q$conn?,0)"] is proc(name, 1)  # dropped, count stays

    def test_error_moves_to_error_state(self):
        env, table, name = build(1, OverflowHandlingProtocol.ERROR)
        system = env.close(proc(name, 1), validate=False)
        succ = {str(label): target for label, target in system.steps()}
        error_state = succ["(q$conn?,0)"]
        assert table.lookup(error_state.name) == ("queue_error", "conn")
        # The error state deadlocks the model (S4.4).
        assert system.steps(error_state) == ()

    def test_overflow_reachable_with_fast_producer(self):
        """A producer outpacing the consumer drives the Error queue into
        its error state."""
        env, table, name = build(1, OverflowHandlingProtocol.ERROR)
        env.define(
            "Producer",
            (),
            send("q$conn", 0) >> (idle() >> proc("Producer")),
        )
        system = env.close(
            restrict(parallel(proc("Producer"), proc(name, 0)), ["q$conn"]),
        )
        trace = find_reachable(system, contains_proc("QE$conn"))
        assert trace is not None
        # Two enqueues needed: one fills the queue, the second overflows.
        taus = [s for s in trace if s.is_event]
        assert len(taus) == 2

    def test_drop_protocol_never_deadlocks(self):
        env, table, name = build(1, OverflowHandlingProtocol.DROP_NEWEST)
        env.define(
            "Producer",
            (),
            send("q$conn", 0) >> (idle() >> proc("Producer")),
        )
        system = env.close(
            restrict(parallel(proc("Producer"), proc(name, 0)), ["q$conn"]),
        )
        assert find_deadlock(system) is None


class TestValidation:
    def test_zero_size_rejected(self):
        env = ProcessEnv()
        with pytest.raises(TranslationError):
            build_queue(
                env,
                NameTable(),
                "conn",
                size=0,
                overflow=OverflowHandlingProtocol.DROP_NEWEST,
            )

    def test_zero_urgency_rejected(self):
        env = ProcessEnv()
        with pytest.raises(TranslationError):
            build_queue(
                env,
                NameTable(),
                "conn",
                size=1,
                overflow=OverflowHandlingProtocol.DROP_NEWEST,
                urgency=0,
            )

    def test_names_recorded(self):
        env, table, name = build(1, OverflowHandlingProtocol.DROP_NEWEST)
        assert table.lookup("Q$conn") == ("queue", "conn")
        assert table.lookup("q$conn") == ("enqueue", "conn")
        assert table.lookup("dq$conn") == ("dequeue", "conn")
