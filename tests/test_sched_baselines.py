"""Tests of the classical schedulability baselines on textbook task sets."""

import pytest

from repro.errors import SchedError
from repro.sched import (
    PeriodicTask,
    TaskSet,
    demand_bound_function,
    edf_schedulable,
    extract_task_set,
    hyperbolic_bound_test,
    liu_layland_bound,
    liu_layland_test,
    response_time,
    rta_schedulable,
    simulate,
)
from repro.sched.rta import response_times


class TestTaskModel:
    def test_utilization(self):
        tasks = TaskSet(
            [PeriodicTask("a", 1, 4), PeriodicTask("b", 2, 8)]
        )
        assert tasks.utilization == pytest.approx(0.5)

    def test_hyperperiod(self):
        tasks = TaskSet(
            [PeriodicTask("a", 1, 4), PeriodicTask("b", 1, 6)]
        )
        assert tasks.hyperperiod == 12

    def test_implicit_deadline_default(self):
        task = PeriodicTask("a", 1, 4)
        assert task.deadline == 4

    def test_deadline_exceeding_period_rejected(self):
        with pytest.raises(SchedError):
            PeriodicTask("a", 1, 4, deadline=6)

    def test_deadline_below_wcet_rejected(self):
        with pytest.raises(SchedError):
            PeriodicTask("a", 3, 8, deadline=2)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchedError):
            TaskSet([PeriodicTask("a", 1, 4), PeriodicTask("a", 1, 8)])

    def test_orderings(self):
        tasks = TaskSet(
            [
                PeriodicTask("slow", 1, 20, deadline=5, priority=9),
                PeriodicTask("fast", 1, 4, deadline=4, priority=1),
            ]
        )
        assert [t.name for t in tasks.by_rate_monotonic()] == ["fast", "slow"]
        assert [t.name for t in tasks.by_deadline_monotonic()] == [
            "fast",
            "slow",
        ]
        assert [t.name for t in tasks.by_explicit_priority()] == [
            "slow",
            "fast",
        ]

    def test_extract_from_instance(self):
        from repro.aadl.gallery import two_periodic_threads

        inst = two_periodic_threads()
        cpu = inst.processors()[0]
        tasks = extract_task_set(inst, cpu)
        assert len(tasks) == 2
        by_name = {t.name.split(".")[-1]: t for t in tasks}
        assert by_name["fast"].wcet == 1 and by_name["fast"].period == 4
        assert by_name["slow"].wcet == 2 and by_name["slow"].period == 8


class TestUtilizationBounds:
    def test_ll_bound_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(100) == pytest.approx(0.6964, abs=1e-3)

    def test_ll_accepts_low_utilization(self):
        tasks = TaskSet(
            [PeriodicTask("a", 1, 4), PeriodicTask("b", 1, 8)]
        )
        assert liu_layland_test(tasks)

    def test_ll_rejects_above_bound(self):
        # U = 0.9 > 0.828 for n=2 -- LL says no (although RTA may say yes).
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 4, 10)]
        )
        assert not liu_layland_test(tasks)

    def test_hyperbolic_dominates_ll(self):
        # Harmonic-ish set: U = 0.9; hyperbolic accepts some LL rejects.
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 2, 5)]
        )
        if not liu_layland_test(tasks):
            assert hyperbolic_bound_test(tasks) or True  # no reverse dominance
        # Dominance direction: LL-accepted implies hyperbolic-accepted.
        easy = TaskSet([PeriodicTask("a", 1, 4), PeriodicTask("b", 1, 8)])
        assert liu_layland_test(easy)
        assert hyperbolic_bound_test(easy)

    def test_constrained_deadline_rejected(self):
        tasks = TaskSet([PeriodicTask("a", 1, 4, deadline=3)])
        with pytest.raises(SchedError):
            liu_layland_test(tasks)


class TestRta:
    def test_textbook_response_times(self):
        """Classic example: C=(1,2,3), T=(4,8,16) under RM."""
        tasks = TaskSet(
            [
                PeriodicTask("t1", 1, 4),
                PeriodicTask("t2", 2, 8),
                PeriodicTask("t3", 3, 16),
            ]
        )
        times = response_times(tasks, ordering="rate")
        assert times["t1"] == 1
        assert times["t2"] == 3
        # R3 fixed point: 3 + ceil(7/4)*1 + ceil(7/8)*2 = 7.
        assert times["t3"] == 7

    def test_exactness_beyond_ll_bound(self):
        """U = 1.0 harmonic set: LL rejects, RTA correctly accepts."""
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 4, 8)]
        )
        assert not liu_layland_test(tasks)
        assert rta_schedulable(tasks, ordering="rate")

    def test_unschedulable_detected(self):
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )
        assert not rta_schedulable(tasks, ordering="rate")

    def test_response_time_divergence_returns_none(self):
        low = PeriodicTask("low", 3, 6)
        high = [PeriodicTask("high", 2, 4)]
        assert response_time(low, high) is None

    def test_deadline_monotonic_ordering(self):
        tasks = TaskSet(
            [
                PeriodicTask("a", 2, 10, deadline=4),
                PeriodicTask("b", 2, 8, deadline=8),
            ]
        )
        assert rta_schedulable(tasks, ordering="deadline")

    def test_unknown_ordering_rejected(self):
        tasks = TaskSet([PeriodicTask("a", 1, 4)])
        with pytest.raises(SchedError):
            rta_schedulable(tasks, ordering="alphabetical")


class TestEdfDemand:
    def test_full_utilization_schedulable(self):
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )
        assert tasks.utilization == pytest.approx(1.0)
        assert edf_schedulable(tasks)

    def test_overload_rejected(self):
        tasks = TaskSet(
            [PeriodicTask("a", 3, 4), PeriodicTask("b", 3, 6)]
        )
        assert not edf_schedulable(tasks)

    def test_constrained_deadlines(self):
        ok = TaskSet([PeriodicTask("a", 1, 4, deadline=2)])
        assert edf_schedulable(ok)
        tight = TaskSet(
            [
                PeriodicTask("a", 2, 8, deadline=2),
                PeriodicTask("b", 2, 8, deadline=3),
            ]
        )
        # dbf(3) = 2 + 2 = 4 > 3: unschedulable despite U = 0.5.
        assert not edf_schedulable(tight)

    def test_demand_bound_function_values(self):
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )
        assert demand_bound_function(tasks, 3) == 0
        assert demand_bound_function(tasks, 4) == 2
        assert demand_bound_function(tasks, 6) == 5
        assert demand_bound_function(tasks, 12) == 12

    def test_edf_beats_rm_at_full_utilization(self):
        """The classic EDF vs RM separation (paper S5 motivation)."""
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )
        assert edf_schedulable(tasks)
        assert not rta_schedulable(tasks, ordering="rate")


class TestSimulation:
    def test_schedulable_run_has_no_misses(self):
        tasks = TaskSet(
            [PeriodicTask("a", 1, 4), PeriodicTask("b", 2, 8)]
        )
        result = simulate(tasks, policy="rate")
        assert result.schedulable
        assert result.horizon == 8

    def test_miss_detected(self):
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )
        result = simulate(tasks, policy="rate")
        assert not result.schedulable
        assert any(name == "b" for name, _ in result.misses)

    def test_edf_policy_schedules_full_utilization(self):
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )
        assert simulate(tasks, policy="edf").schedulable
        assert simulate(tasks, policy="llf").schedulable

    def test_matches_rta_on_response_times(self):
        tasks = TaskSet(
            [
                PeriodicTask("t1", 1, 4),
                PeriodicTask("t2", 2, 8),
                PeriodicTask("t3", 3, 16),
            ]
        )
        sim = simulate(tasks, policy="rate")
        rta = response_times(tasks, ordering="rate")
        # Synchronous release: the first job exhibits the worst case.
        for name, worst in rta.items():
            assert sim.response_times[name] == worst

    def test_gantt_rendering(self):
        tasks = TaskSet(
            [PeriodicTask("a", 1, 4), PeriodicTask("b", 2, 8)]
        )
        result = simulate(tasks, policy="rate")
        chart = result.gantt(["a", "b"])
        assert "a |#" in chart

    def test_stop_at_first_miss(self):
        tasks = TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )
        result = simulate(tasks, policy="rate", stop_at_first_miss=True)
        assert len(result.misses) == 1

    def test_explicit_priority_policy(self):
        tasks = TaskSet(
            [
                PeriodicTask("a", 1, 4, priority=1),
                PeriodicTask("b", 2, 8, priority=2),
            ]
        )
        result = simulate(tasks, policy="explicit")
        # b has higher explicit priority: it runs first.
        assert result.schedule[0] == "b"

    def test_unknown_policy_rejected(self):
        tasks = TaskSet([PeriodicTask("a", 1, 4)])
        with pytest.raises(SchedError):
            simulate(tasks, policy="lottery")

    def test_idle_slots(self):
        tasks = TaskSet([PeriodicTask("a", 1, 4)])
        result = simulate(tasks, policy="rate")
        assert result.schedule == ["a", None, None, None]
