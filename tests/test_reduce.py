"""State-space reduction: spec parsing, symmetry canonicalization
(property-tested), the partial-order ample filter, and the
reduced ≡ unreduced equivalence across every integration surface
(engine, analyze, compose, portfolio, batch cache keys, CLI)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.aadl import format_model
from repro.analysis import Verdict, analyze_model
from repro.batch import AnalysisJob
from repro.batch.cache import cache_key
from repro.cli import main
from repro.compose import analyze_compositionally
from repro.engine import Budget, explore
from repro.engine.reduce import (
    PASS_NAMES,
    REDUCTION_FAULTS,
    ClusterMap,
    PartialOrderReduction,
    SymmetryReduction,
    build_cluster_map,
    build_reduction,
    detect_replica_classes,
    parse_reduction_spec,
    reduction_token,
    rename_term,
)
from repro.errors import AnalysisError
from repro.translate import translate
from repro.workloads import replicated_system

SEED = 7


@pytest.fixture(scope="module")
def replicated():
    """Three identical single-thread replicas: the symmetric regime."""
    return replicated_system(3, 1, rng=np.random.default_rng(SEED))


@pytest.fixture(scope="module")
def jittered():
    """Same draw, but replica offsets differ: symmetry must not fire."""
    return replicated_system(
        3, 1, offset_jitter=True, rng=np.random.default_rng(SEED)
    )


@pytest.fixture(scope="module")
def translation(replicated):
    return translate(replicated)


@pytest.fixture(scope="module")
def classes(translation):
    return detect_replica_classes(translation)


@pytest.fixture(scope="module")
def sym_pass(classes):
    return SymmetryReduction(classes)


@pytest.fixture(scope="module")
def visited(translation):
    """Every reachable state of the unreduced replicated system."""
    result = explore(translation.system, stop_at_first_deadlock=False)
    assert result.completed
    # The parent map's keys are exactly the visited states.
    return list(result._parent)


class TestSpecParsing:
    def test_empty_specs(self):
        assert parse_reduction_spec(None) == ()
        assert parse_reduction_spec("") == ()
        assert parse_reduction_spec("none") == ()

    def test_order_is_normalized(self):
        assert parse_reduction_spec("sym,por") == ("sym", "por")
        assert parse_reduction_spec("por,sym") == ("sym", "por")
        assert parse_reduction_spec(["por"]) == ("por",)
        assert parse_reduction_spec(" sym , por ") == PASS_NAMES

    def test_unknown_pass_rejected(self):
        with pytest.raises(AnalysisError, match="unknown reduction pass"):
            parse_reduction_spec("sym,magic")

    def test_token_is_canonical(self):
        assert reduction_token("por,sym") == "sym,por"
        assert reduction_token(("por",)) == "por"
        assert reduction_token(None) is None
        assert reduction_token("none") is None


class TestReplicaDetection:
    def test_replicated_processors_detected(self, classes):
        assert classes, "identical replicas must yield a symmetry class"
        assert any(cls.size == 3 for cls in classes)

    def test_offset_jitter_blocks_symmetry(self, jittered):
        assert detect_replica_classes(translate(jittered)) == []

    def test_overeager_fault_merges_jittered_replicas(self, jittered):
        forced = detect_replica_classes(translate(jittered), overeager=True)
        assert forced, "the fault must pair units it cannot verify"

    def test_rename_maps_round_trip(self, classes):
        cls = classes[0]
        for index in range(cls.size):
            to_rep, from_rep = cls.to_rep[index], cls.from_rep[index]
            assert {to_rep[k]: k for k in to_rep} == from_rep


class TestRenameTerm:
    def test_empty_mapping_is_identity(self, visited):
        assert rename_term(visited[0], {}) is visited[0]

    def test_swap_is_an_involution(self, classes, visited):
        """Applying the unit-0/unit-1 transposition twice is the
        identity (renaming must be a genuine permutation action)."""
        cls = classes[0]
        swap = dict(zip(cls.units[0].names, cls.units[1].names))
        swap.update(zip(cls.units[1].names, cls.units[0].names))
        for state in visited[:25]:
            there = rename_term(state, swap)
            assert rename_term(there, swap) is state


def _permute(cls, perm, state):
    """Apply the unit permutation ``perm`` of ``cls`` to ``state``."""
    mapping = {}
    for index, target in enumerate(perm):
        mapping.update(zip(cls.units[index].names, cls.units[target].names))
    return rename_term(state, mapping)


class TestCanonicalizerProperties:
    @given(index=st.integers(min_value=0, max_value=10_000))
    def test_idempotent(self, sym_pass, visited, index):
        state = visited[index % len(visited)]
        canonical = sym_pass.canonicalize(state)
        assert sym_pass.canonicalize(canonical) is canonical

    @given(
        perm=st.permutations(list(range(3))),
        index=st.integers(min_value=0, max_value=10_000),
    )
    def test_permutation_invariant(
        self, classes, sym_pass, visited, perm, index
    ):
        """Every state of an orbit canonicalizes to the same
        representative: canonical(sigma . s) == canonical(s)."""
        state = visited[index % len(visited)]
        permuted = _permute(classes[0], perm, state)
        assert sym_pass.canonicalize(permuted) is sym_pass.canonicalize(
            state
        )

    def test_stable_across_instances(self, translation, sym_pass, visited):
        """A fresh pass (empty caches) picks the same representatives."""
        fresh = SymmetryReduction(detect_replica_classes(translation))
        for state in visited[:40]:
            assert fresh.canonicalize(state) is sym_pass.canonicalize(state)

    def test_canonicalization_actually_merges(self, sym_pass, visited):
        representatives = {sym_pass.canonicalize(s) for s in visited}
        assert len(representatives) < len(visited)


class TestPartialOrderFilter:
    def test_cluster_map_separates_unconnected_threads(self, translation):
        clusters = build_cluster_map(translation)
        assert clusters.n_clusters == 3

    def test_short_step_tuples_pass_through(self):
        por = PartialOrderReduction(ClusterMap({}, 0))
        assert por.filter(None, ()) == ()
        steps = (("label", "successor"),)
        assert por.filter(None, steps) is steps
        assert por.por_pruned == 0

    def test_non_event_steps_pass_through(self, visited):
        por = PartialOrderReduction(ClusterMap({"x": 0, "y": 1}, 2))
        steps = ((object(), visited[0]), (object(), visited[0]))
        assert por.filter(visited[0], steps) is steps

    def test_por_prunes_but_preserves_verdict(self, translation):
        full = explore(translation.system, stop_at_first_deadlock=False)
        reduction = build_reduction(translation, "por")
        assert reduction is not None
        reduced = explore(
            translation.system,
            stop_at_first_deadlock=False,
            reduction=reduction,
        )
        assert reduced.stats.por_pruned > 0
        assert reduced.num_states < full.num_states
        assert reduced.deadlock_free == full.deadlock_free


class TestBuildReduction:
    def test_no_spec_is_none(self, translation):
        assert build_reduction(translation, None) is None
        assert build_reduction(translation, "none") is None

    def test_sym_declines_on_jittered_model(self, jittered):
        assert build_reduction(translate(jittered), "sym") is None

    def test_pass_names_in_order(self, translation):
        reduction = build_reduction(translation, "por,sym")
        assert reduction.pass_names == ("sym", "por")

    def test_unknown_fault_rejected(self, translation):
        with pytest.raises(AnalysisError, match="unknown reduction fault"):
            build_reduction(translation, "sym", fault="no-such-fault")

    def test_fault_registry_documents_each_fault(self):
        assert "overeager-sym" in REDUCTION_FAULTS
        for description in REDUCTION_FAULTS.values():
            assert description


class TestEngineIntegration:
    def test_reduced_run_reports_counters(self, translation):
        reduction = build_reduction(translation, "sym,por")
        result = explore(
            translation.system,
            stop_at_first_deadlock=False,
            reduction=reduction,
        )
        assert result.stats.states_canonicalized > 0
        assert result.stats.orbits_merged > 0

    def test_counters_are_per_run_deltas(self, translation):
        """Reusing one Reduction must not double-count earlier runs."""
        reduction = build_reduction(translation, "sym,por")
        first = explore(
            translation.system,
            stop_at_first_deadlock=False,
            reduction=reduction,
        )
        second = explore(
            translation.system,
            stop_at_first_deadlock=False,
            reduction=reduction,
        )
        assert second.num_states == first.num_states
        # The second run is served from the canonicalization cache, so
        # its own delta counts no new canonicalizations.
        assert second.stats.states_canonicalized == 0


class TestAnalysisEquivalence:
    def test_analyze_model_reduced_matches_unreduced(self, replicated):
        unreduced = analyze_model(replicated)
        reduced = analyze_model(replicated, reduction="sym,por")
        assert reduced.verdict is unreduced.verdict
        assert reduced.num_states < unreduced.num_states
        assert reduced.exploration.stats.orbits_merged > 0

    def test_jittered_model_runs_unreduced(self, jittered):
        """When no pass applies the reduced path is the identity."""
        unreduced = analyze_model(jittered)
        reduced = analyze_model(jittered, reduction="sym")
        assert reduced.verdict is unreduced.verdict
        assert reduced.num_states == unreduced.num_states

    def test_compose_forwards_reduction(self, replicated):
        composed = analyze_compositionally(
            replicated, workers=1, reduction="sym,por"
        )
        assert composed.verdict is analyze_model(replicated).verdict

    def test_portfolio_accepts_reduction(self, replicated):
        result = analyze_model(
            replicated, portfolio=True, reduction="sym,por"
        )
        assert result.verdict is analyze_model(replicated).verdict


class TestBatchCacheKeys:
    def test_reduced_jobs_get_distinct_cache_keys(self):
        source = "system S\nend S;\n"
        plain = AnalysisJob.from_aadl(source, root="S.impl")
        reduced = AnalysisJob.from_aadl(
            source, root="S.impl", reduce="sym,por"
        )
        assert "reduce" not in plain.options
        assert reduced.options["reduce"] == "sym,por"
        assert cache_key(plain) != cache_key(reduced)

    def test_unreduced_key_is_unchanged_by_the_feature(self):
        """``reduce=None`` must leave the options dict exactly as the
        pre-reduction code built it, preserving old cache entries."""
        source = "system S\nend S;\n"
        plain = AnalysisJob.from_aadl(source, root="S.impl")
        explicit = AnalysisJob.from_aadl(
            source, root="S.impl", reduce=None
        )
        assert plain.options == explicit.options
        assert cache_key(plain) == cache_key(explicit)


@pytest.fixture()
def replicated_file(tmp_path, replicated):
    path = tmp_path / "replicated.aadl"
    path.write_text(format_model(replicated.declarative))
    return str(path)


class TestCli:
    def test_analyze_reduce_flag(self, replicated_file, capsys):
        assert main(["analyze", replicated_file, "--reduce", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "verdict: schedulable" in out
        assert "orbits merged" in out

    def test_no_reduce_flag(self, replicated_file, capsys):
        assert (
            main(["analyze", replicated_file, "--reduce", "--no-reduce"])
            == 0
        )
        out = capsys.readouterr().out
        assert "orbits merged" not in out

    def test_reduce_spec_argument(self, replicated_file, capsys):
        assert (
            main(["analyze", replicated_file, "--reduce", "por", "--stats"])
            == 0
        )
        out = capsys.readouterr().out
        assert "transitions pruned" in out

    def test_bad_spec_is_a_usage_error(self, replicated_file, capsys):
        assert main(["analyze", replicated_file, "--reduce", "magic"]) == 2
        assert "unknown reduction pass" in capsys.readouterr().err

    def test_reduce_all_modes_needs_a_modal_root(
        self, replicated_file, capsys
    ):
        """--reduce composes with --all-modes now (the spec is forwarded
        to every per-mode run); a modeless root is still an error."""
        assert (
            main(
                ["analyze", replicated_file, "--reduce", "--all-modes"]
            )
            == 2
        )
        assert "declares no modes" in capsys.readouterr().err

    def test_acsr_has_no_reduce_flag(self, tmp_path):
        """Raw-ACSR exploration (and its walk/DOT traces) bypasses
        reduction entirely: no translation metadata, concrete traces."""
        path = tmp_path / "sys.acsr"
        path.write_text("P = NIL\nsystem P\n")
        with pytest.raises(SystemExit):
            main(["acsr", str(path), "--reduce"])

    def test_batch_run_with_reduction(self, replicated_file, capsys):
        assert (
            main(
                [
                    "batch", "run", replicated_file,
                    "--jobs", "1", "--reduce", "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "schedulable" in out
