"""Crash-hardening tests: fault injection, worker death, damaged caches.

The batch pool's resilience claims are pinned here with deterministic
fault injection (``options["batch_fault"]``, see
:data:`repro.batch.BATCH_FAULTS`) and deliberately damaged cache
directories: a worker bug, a SIGKILLed worker process, a corrupt or
unreadable cache entry and an unwritable cache directory must each cost
one job's result or one re-proof -- never the batch, never the process.
"""

import json
import os

import pytest

from repro.aadl.gallery import cruise_control_text
from repro.batch import (
    BATCH_FAULTS,
    WORKER_DIED,
    AnalysisJob,
    VerdictCache,
    cache_key,
    execute_job,
    run_batch,
)
from repro.batch.cache import CACHE_SCHEMA_VERSION


def job(text=None, job_id="cc", max_states=200_000, fault=None, **kwargs):
    j = AnalysisJob.from_aadl(
        text or cruise_control_text(),
        job_id=job_id,
        max_states=max_states,
        **kwargs,
    )
    if fault:
        j.options["batch_fault"] = fault
    return j


class TestFaultInjection:
    def test_fault_names_are_stable(self):
        assert BATCH_FAULTS == ("raise", "sigkill", "block")

    def test_unexpected_exception_becomes_error_result(self):
        result = execute_job(job(fault="raise"))
        assert result.verdict == "error"
        assert "RuntimeError" in result.error
        # the traceback survives into the report for diagnosis
        assert "Traceback" in result.error

    def test_unknown_fault_is_a_batch_error_result(self):
        result = execute_job(job(fault="bogus"))
        assert result.verdict == "error"
        assert "unknown batch fault" in result.error

    def test_fault_participates_in_cache_key(self):
        assert cache_key(job()) != cache_key(job(fault="raise"))

    def test_raise_fault_does_not_abort_batch(self):
        report = run_batch([job(fault="raise"), job(job_id="good")], workers=1)
        by_id = {r.job_id: r for r in report.results}
        assert by_id["cc"].verdict == "error"
        assert by_id["good"].verdict == "schedulable"
        assert report.exit_code() == 2


class TestWorkerDeath:
    """A SIGKILLed worker must cost exactly its own job."""

    def test_sigkilled_worker_does_not_abort_batch(self):
        jobs = [
            job(fault="sigkill", job_id="killer"),
            job(cruise_control_text(overloaded=True), job_id="overloaded"),
            job(job_id="good"),
        ]
        report = run_batch(jobs, workers=2)
        assert len(report.results) == 3
        by_id = {r.job_id: r for r in report.results}
        assert by_id["killer"].verdict == "error"
        assert "worker process died" in by_id["killer"].error
        # the innocents sharing the pool still get real verdicts
        assert by_id["overloaded"].verdict == "unschedulable"
        assert by_id["good"].verdict == "schedulable"
        assert report.exit_code() == 2

    def test_worker_death_message_is_stable(self):
        # the serve layer and the docs both quote this constant
        assert "worker process died" in WORKER_DIED


class TestDamagedCacheEntries:
    """Every way an entry can rot must read as a counted miss."""

    def entry_path(self, cache, key):
        return os.path.join(cache.directory, key[:2], f"{key}.json")

    def test_entry_is_a_directory_is_a_miss(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"))
        key = "ab" + "0" * 62
        os.makedirs(self.entry_path(cache, key))
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_corrupt_json_is_a_miss(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"))
        key = "ab" + "1" * 62
        path = self.entry_path(cache, key)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_wrong_shape_is_a_miss(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"))
        key = "ab" + "2" * 62
        path = self.entry_path(cache, key)
        os.makedirs(os.path.dirname(path))
        for blob in (
            json.dumps([1, 2, 3]),  # not an object
            json.dumps({"schema_version": CACHE_SCHEMA_VERSION}),  # no result
            json.dumps(
                {"schema_version": CACHE_SCHEMA_VERSION, "result": "nope"}
            ),  # result not an object
        ):
            with open(path, "w") as handle:
                handle.write(blob)
            assert cache.get(key) is None
        assert cache.misses == 3

    def test_unwritable_directory_degrades_to_noop(self, tmp_path):
        # the cache "directory" is nested under a regular file, so every
        # write fails with NotADirectoryError regardless of privileges
        # (chmod-based denial is invisible to root)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = VerdictCache(str(blocker / "cache"))
        assert cache.put("ab" + "3" * 62, {"verdict": "schedulable"}) is None
        assert cache.write_errors == 1
        assert cache.get("ab" + "3" * 62) is None  # and reads just miss

    def test_batch_survives_unwritable_cache(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = VerdictCache(str(blocker / "cache"))
        report = run_batch([job()], workers=1, cache=cache)
        assert report.results[0].verdict == "schedulable"
        assert cache.write_errors == 1


class TestEviction:
    def put(self, cache, n, mtime=None):
        key = f"{n:02d}" + "e" * 62
        path = cache.put(key, {"verdict": "schedulable", "n": n})
        assert path is not None
        if mtime is not None:
            os.utime(path, (mtime, mtime))
        return key, path

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"), max_entries=2)
        k1, p1 = self.put(cache, 1, mtime=1_000)
        k2, p2 = self.put(cache, 2, mtime=2_000)
        k3, p3 = self.put(cache, 3, mtime=3_000)
        cache.evict()
        assert not os.path.exists(p1)  # oldest gone
        assert os.path.exists(p2) and os.path.exists(p3)
        assert cache.evictions >= 1
        assert len(cache) == 2

    def test_hit_refreshes_recency(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"), max_entries=2)
        k1, p1 = self.put(cache, 1, mtime=1_000)
        k2, p2 = self.put(cache, 2, mtime=2_000)
        assert cache.get(k1) is not None  # os.utime bumps k1 to "now"
        self.put(cache, 3)
        cache.evict()
        assert os.path.exists(p1)  # refreshed, survives
        assert not os.path.exists(p2)  # now the LRU victim

    def test_max_bytes_cap(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"))
        _, path = self.put(cache, 1)
        size = os.path.getsize(path)
        cache.max_bytes = int(size * 2.5)  # room for two entries
        self.put(cache, 2, mtime=2_000)
        self.put(cache, 3, mtime=3_000)
        cache.evict()
        assert len(cache) == 2
        assert cache.size_bytes() <= cache.max_bytes

    def test_no_caps_means_no_eviction(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"))
        for n in range(5):
            self.put(cache, n)
        assert cache.evict() == 0
        assert len(cache) == 5

    def test_stats_shape(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"), max_entries=10)
        key, _ = self.put(cache, 1)
        cache.get(key)
        cache.get("ff" + "0" * 62)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["max_entries"] == 10
        assert cache.hit_rate() == 0.5


class TestInBatchDedupe:
    """Identical jobs in one batch run once; copies are marked."""

    def test_duplicates_execute_once(self):
        jobs = [job(job_id=f"dup{i}") for i in range(3)]
        seen = []
        report = run_batch(
            jobs,
            workers=1,
            progress=lambda done, total, r: seen.append(r.job_id),
        )
        marks = [r.deduped for r in report.results]
        assert marks == [False, True, True]
        # input order and per-request ids are preserved
        assert [r.job_id for r in report.results] == ["dup0", "dup1", "dup2"]
        assert len(seen) == 3
        assert {r.verdict for r in report.results} == {"schedulable"}

    def test_distinct_jobs_do_not_dedupe(self):
        jobs = [
            job(job_id="a"),
            job(cruise_control_text(overloaded=True), job_id="b"),
        ]
        report = run_batch(jobs, workers=1)
        assert [r.deduped for r in report.results] == [False, False]

    def test_dedupe_propagates_error_results(self):
        jobs = [job(fault="raise", job_id=f"bad{i}") for i in range(2)]
        report = run_batch(jobs, workers=1)
        assert [r.verdict for r in report.results] == ["error", "error"]
        assert report.results[1].deduped
        assert report.exit_code() == 2

    def test_dedupe_composes_with_cache(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "cache"))
        run_batch([job(job_id="warm")], workers=1, cache=cache)
        report = run_batch(
            [job(job_id=f"r{i}") for i in range(2)], workers=1, cache=cache
        )
        # the primary is a cache hit; its duplicate inherits the flag
        assert [r.cached for r in report.results] == [True, True]
        assert [r.deduped for r in report.results] == [False, True]

    def test_report_marks_deduped_rows(self):
        report = run_batch([job(job_id=f"d{i}") for i in range(2)], workers=1)
        assert "(deduped)" in report.format()

    def test_dedupe_not_stored_in_result_dict(self):
        # per-batch provenance must not leak into cache entries
        report = run_batch([job(job_id=f"d{i}") for i in range(2)], workers=1)
        assert "deduped" not in report.results[1].to_dict()


class TestServeBundleReplay:
    def test_from_file_accepts_serve_bundle(self, tmp_path):
        source = job()
        bundle = {
            "schema_version": 1,
            "request_id": "r000001",
            "job": source.to_dict(),
            "result": {"job_id": "cc", "verdict": "schedulable"},
        }
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps(bundle))
        replayed = AnalysisJob.from_file(str(path))
        assert replayed.kind == "aadl"
        assert cache_key(replayed) == cache_key(source)
