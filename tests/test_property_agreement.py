"""Cross-validation properties: the ACSR verdict vs classical oracles.

The paper's S5 theorem -- deadlock-freedom iff all deadlines met -- implies
that on the classical regime (synchronous periodic task sets,
deterministic execution times) the exhaustive ACSR analysis must agree
exactly with response-time analysis (fixed priority) and with the
processor-demand criterion (EDF).  These hypothesis tests draw random
integer task sets and check the agreement, plus internal consistency of
the baselines themselves.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import Verdict, analyze_model
from repro.aadl.properties import SchedulingProtocol
from repro.sched import (
    PeriodicTask,
    TaskSet,
    edf_schedulable,
    hyperbolic_bound_test,
    liu_layland_test,
    rta_schedulable,
    simulate,
)
from repro.workloads import task_set_to_system, uunifast

# Small parameters keep hyperperiods (and ACSR state spaces) tractable.
small_tasks = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),   # wcet
        st.sampled_from([4, 6, 8, 12]),          # period
    ),
    min_size=1,
    max_size=3,
)


def build_task_set(specs):
    tasks = []
    for index, (wcet, period) in enumerate(specs):
        tasks.append(PeriodicTask(f"t{index}", wcet=wcet, period=period))
    return TaskSet(tasks)


class TestAcsrAgreesWithOracles:
    @given(small_tasks)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_rm_agreement_with_rta(self, specs):
        tasks = build_task_set(specs)
        instance = task_set_to_system(
            tasks, scheduling=SchedulingProtocol.RATE_MONOTONIC
        )
        expected = rta_schedulable(tasks, ordering="rate")
        result = analyze_model(instance, max_states=300_000)
        assert result.verdict is not Verdict.UNKNOWN
        assert result.schedulable == expected

    @given(small_tasks)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_edf_agreement_with_demand(self, specs):
        tasks = build_task_set(specs)
        instance = task_set_to_system(
            tasks, scheduling=SchedulingProtocol.EARLIEST_DEADLINE_FIRST
        )
        expected = edf_schedulable(tasks)
        result = analyze_model(instance, max_states=300_000)
        assert result.verdict is not Verdict.UNKNOWN
        assert result.schedulable == expected


class TestBaselineConsistency:
    @given(small_tasks)
    @settings(max_examples=100, deadline=None)
    def test_ll_implies_rta(self, specs):
        """The LL bound is sufficient: whatever it accepts, exact RTA
        accepts too."""
        tasks = build_task_set(specs)
        if liu_layland_test(tasks):
            assert rta_schedulable(tasks, ordering="rate")

    @given(small_tasks)
    @settings(max_examples=100, deadline=None)
    def test_ll_implies_hyperbolic(self, specs):
        tasks = build_task_set(specs)
        if liu_layland_test(tasks):
            assert hyperbolic_bound_test(tasks)

    @given(small_tasks)
    @settings(max_examples=100, deadline=None)
    def test_hyperbolic_implies_rta(self, specs):
        tasks = build_task_set(specs)
        if hyperbolic_bound_test(tasks):
            assert rta_schedulable(tasks, ordering="rate")

    @given(small_tasks)
    @settings(max_examples=100, deadline=None)
    def test_rm_implies_edf(self, specs):
        """EDF is optimal: anything RM schedules, EDF schedules."""
        tasks = build_task_set(specs)
        if rta_schedulable(tasks, ordering="rate"):
            assert edf_schedulable(tasks)

    @given(small_tasks)
    @settings(max_examples=100, deadline=None)
    def test_simulation_matches_rta(self, specs):
        """Synchronous deterministic sets: one simulated hyperperiod is
        the worst case, so sim and RTA agree."""
        tasks = build_task_set(specs)
        assert simulate(tasks, policy="rate").schedulable == rta_schedulable(
            tasks, ordering="rate"
        )

    @given(small_tasks)
    @settings(max_examples=100, deadline=None)
    def test_simulation_matches_demand_for_edf(self, specs):
        tasks = build_task_set(specs)
        assert simulate(tasks, policy="edf").schedulable == edf_schedulable(
            tasks
        )

    @given(small_tasks)
    @settings(max_examples=100, deadline=None)
    def test_overutilized_never_schedulable(self, specs):
        tasks = build_task_set(specs)
        if tasks.utilization > 1.0 + 1e-9:
            assert not edf_schedulable(tasks)
            assert not rta_schedulable(tasks, ordering="rate")


class TestUUniFastProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=200)
    def test_sums_and_positivity(self, n, total, seed):
        values = uunifast(n, total, np.random.default_rng(seed))
        assert len(values) == n
        assert abs(sum(values) - total) < 1e-9
        assert all(v >= 0 for v in values)
