"""Cross-validation properties: the ACSR verdict vs classical oracles.

The paper's S5 theorem -- deadlock-freedom iff all deadlines met -- implies
that on the classical regime the exhaustive ACSR analysis must agree
with response-time analysis (fixed priority), the processor-demand
criterion (EDF) and a simulated worst-case window.  These properties now
ride on the differential oracle harness (:mod:`repro.oracle`): Hypothesis
draws ``(generator, seed, params)`` triples, the harness evaluates and
classifies the agreement, and any disagreement is delta-debugged to a
minimal reproducer whose replay command lands in the failure message.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.oracle import (
    AgreementStatus,
    OracleCase,
    ReproBundle,
    evaluate_case,
    shrink_case,
)
from repro.sched import (
    PeriodicTask,
    TaskSet,
    edf_schedulable,
    hyperbolic_bound_test,
    liu_layland_test,
    rta_schedulable,
    simulate,
)
from repro.workloads import GENERATORS, uunifast

#: Where disagreement bundles shrunk out of Hypothesis failures land.
HYPOTHESIS_BUNDLE_DIR = "artifacts/oracle/hypothesis"

#: Small periods keep hyperperiods (and ACSR state spaces) tractable.
SMALL_PERIODS = (4, 6, 8, 12)


def check_agreement(case: OracleCase, *, max_states: int = 300_000) -> None:
    """Evaluate a case; on disagreement, shrink it, persist a replayable
    bundle and fail with the replay command."""
    pipeline, oracles, classification = evaluate_case(
        case, max_states=max_states
    )
    if classification.status is AgreementStatus.AGREED:
        return
    if classification.status is AgreementStatus.UNKNOWN:
        pytest.fail(
            f"{case.case_id}: exploration budget exhausted "
            f"({pipeline.num_states} states) -- raise max_states for "
            f"this property"
        )

    def still_disagrees(candidate: OracleCase) -> bool:
        _, _, cls = evaluate_case(candidate, max_states=max_states)
        return cls.status is AgreementStatus.DISAGREED

    shrunk = shrink_case(case, still_disagrees).case
    s_pipeline, s_oracles, s_classification = evaluate_case(
        shrunk, max_states=max_states
    )
    bundle = ReproBundle.from_evaluation(
        kind="disagreement",
        case=shrunk,
        pipeline=s_pipeline,
        oracles=s_oracles,
        classification=s_classification,
        max_states=max_states,
        profile="hypothesis",
        original_case=case,
    )
    path = bundle.save(HYPOTHESIS_BUNDLE_DIR)
    pytest.fail(
        f"{case.case_id}: pipeline verdict {s_pipeline.verdict.value} "
        f"conflicts with {s_classification.conflicts}; shrunk to "
        f"{len(shrunk.tasks)} task(s); replay with: "
        f"{bundle.replay_command(path)}"
    )


@st.composite
def oracle_cases(draw) -> OracleCase:
    """A seeded draw from the oracle's workload generators."""
    generator = draw(st.sampled_from(sorted(GENERATORS)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=1, max_value=4))
    utilization = draw(
        st.floats(min_value=0.3, max_value=1.15, allow_nan=False)
    )
    scheduling = draw(st.sampled_from(["RMS", "DMS", "EDF"]))
    params = {} if generator == "harmonic" else {"periods": SMALL_PERIODS}
    return OracleCase.generate(
        generator,
        seed,
        n=n,
        utilization=round(utilization, 4),
        scheduling=scheduling,
        **params,
    )


class TestAcsrAgreesWithOracles:
    @given(oracle_cases())
    def test_pipeline_agrees_with_classical_oracles(self, case):
        check_agreement(case)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_boundary_utilization_agreement(self, seed):
        """Draws pinned to the U = 1 boundary, where quantization and
        off-by-one interference bugs would cluster."""
        case = OracleCase.generate(
            "harmonic",
            seed,
            n=3,
            utilization=1.0,
            scheduling="EDF",
        )
        check_agreement(case)


# -- classical baselines against each other (no exploration involved) ---

small_tasks = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),   # wcet
        st.sampled_from([4, 6, 8, 12]),          # period
    ),
    min_size=1,
    max_size=3,
)


def build_task_set(specs):
    tasks = []
    for index, (wcet, period) in enumerate(specs):
        tasks.append(PeriodicTask(f"t{index}", wcet=wcet, period=period))
    return TaskSet(tasks)


class TestBaselineConsistency:
    @given(small_tasks)
    def test_ll_implies_rta(self, specs):
        """The LL bound is sufficient: whatever it accepts, exact RTA
        accepts too."""
        tasks = build_task_set(specs)
        if liu_layland_test(tasks):
            assert rta_schedulable(tasks, ordering="rate")

    @given(small_tasks)
    def test_ll_implies_hyperbolic(self, specs):
        tasks = build_task_set(specs)
        if liu_layland_test(tasks):
            assert hyperbolic_bound_test(tasks)

    @given(small_tasks)
    def test_hyperbolic_implies_rta(self, specs):
        tasks = build_task_set(specs)
        if hyperbolic_bound_test(tasks):
            assert rta_schedulable(tasks, ordering="rate")

    @given(small_tasks)
    def test_rm_implies_edf(self, specs):
        """EDF is optimal: anything RM schedules, EDF schedules."""
        tasks = build_task_set(specs)
        if rta_schedulable(tasks, ordering="rate"):
            assert edf_schedulable(tasks)

    @given(small_tasks)
    def test_simulation_matches_rta(self, specs):
        """Synchronous deterministic sets: one simulated hyperperiod is
        the worst case, so sim and RTA agree."""
        tasks = build_task_set(specs)
        assert simulate(tasks, policy="rate").schedulable == rta_schedulable(
            tasks, ordering="rate"
        )

    @given(small_tasks)
    def test_simulation_matches_demand_for_edf(self, specs):
        tasks = build_task_set(specs)
        assert simulate(tasks, policy="edf").schedulable == edf_schedulable(
            tasks
        )

    @given(small_tasks)
    def test_overutilized_never_schedulable(self, specs):
        tasks = build_task_set(specs)
        if tasks.utilization > 1.0 + 1e-9:
            assert not edf_schedulable(tasks)
            assert not rta_schedulable(tasks, ordering="rate")


class TestUUniFastProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_sums_and_positivity(self, n, total, seed):
        values = uunifast(n, total, np.random.default_rng(seed))
        assert len(values) == n
        assert abs(sum(values) - total) < 1e-9
        assert all(v >= 0 for v in values)

    @given(
        st.sampled_from(sorted(GENERATORS)),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_generators_are_deterministic(self, generator, seed):
        """The bundle contract: (generator, seed, params) reproduces the
        draw byte for byte."""
        first = OracleCase.generate(
            generator, seed, n=3, utilization=0.8, scheduling="RMS"
        )
        second = OracleCase.generate(
            generator, seed, n=3, utilization=0.8, scheduling="RMS"
        )
        assert first.to_dict() == second.to_dict()
