"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.acsr import (
    ProcessEnv,
    action,
    idle,
    nil,
    proc,
    recv,
    restrict,
    parallel,
    send,
)


@pytest.fixture
def env() -> ProcessEnv:
    return ProcessEnv()


@pytest.fixture
def simple_system(env: ProcessEnv):
    """The paper's Figure 2 'Simple' process with an idling receiver:
    Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : (done!,1) . Simple
    Recv   = (done?,1) . Recv + idle : Recv
    """
    env.define(
        "Simple",
        (),
        action({"cpu": 1})
        >> action({"cpu": 1, "bus": 1})
        >> send("done", 1)
        >> proc("Simple"),
    )
    env.define(
        "Recv",
        (),
        recv("done", 1).then(proc("Recv")) + idle().then(proc("Recv")),
    )
    root = restrict(parallel(proc("Simple"), proc("Recv")), ["done"])
    return env.close(root)


def labels_of(system, term=None):
    """Formatted prioritized labels of a state (test convenience)."""
    from repro.acsr.printer import format_label

    return sorted(
        format_label(label) for label, _ in system.prioritized_steps(term)
    )
