"""Shared fixtures, helpers and Hypothesis configuration.

Hypothesis settings live here once, as registered profiles, instead of
being repeated per file:

* ``dev`` (default) -- moderate example counts for local iteration;
* ``ci`` -- what the CI workflow runs (``HYPOTHESIS_PROFILE=ci``);
* ``nightly`` -- deep example counts for the scheduled nightly job.

All profiles disable the per-example deadline (ACSR explorations have
high variance), tolerate slow data generation, and print the
``@reproduce_failure`` blob so any shrunk failure can be replayed
exactly.  Individual tests override only ``max_examples`` when their
cost profile genuinely differs.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.acsr import (
    ProcessEnv,
    action,
    idle,
    nil,
    proc,
    recv,
    restrict,
    parallel,
    send,
)

_COMMON = dict(
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.register_profile("dev", max_examples=50, **_COMMON)
settings.register_profile("ci", max_examples=100, **_COMMON)
settings.register_profile("nightly", max_examples=400, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def env() -> ProcessEnv:
    return ProcessEnv()


@pytest.fixture
def simple_system(env: ProcessEnv):
    """The paper's Figure 2 'Simple' process with an idling receiver:
    Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : (done!,1) . Simple
    Recv   = (done?,1) . Recv + idle : Recv
    """
    env.define(
        "Simple",
        (),
        action({"cpu": 1})
        >> action({"cpu": 1, "bus": 1})
        >> send("done", 1)
        >> proc("Simple"),
    )
    env.define(
        "Recv",
        (),
        recv("done", 1).then(proc("Recv")) + idle().then(proc("Recv")),
    )
    root = restrict(parallel(proc("Simple"), proc("Recv")), ["done"])
    return env.close(root)


def labels_of(system, term=None):
    """Formatted prioritized labels of a state (test convenience)."""
    from repro.acsr.printer import format_label

    return sorted(
        format_label(label) for label, _ in system.prioritized_steps(term)
    )
