"""Tests of the ACSR concrete syntax: parser, printer, round-trips."""

import pytest

from repro.errors import AcsrSyntaxError
from repro.acsr import (
    action,
    choice,
    format_env,
    format_term,
    guard,
    idle,
    nil,
    parallel,
    parse_env,
    parse_term,
    proc,
    recv,
    restrict,
    scope,
    send,
)
from repro.acsr.expressions import var
from repro.acsr.resources import Action
from repro.acsr.terms import EventPrefix, Guard, ProcRef, Scope


class TestTermParsing:
    def test_nil(self):
        assert parse_term("NIL") is nil()

    def test_action_prefix(self):
        term = parse_term("{(cpu,1)} : NIL")
        assert term is (action({"cpu": 1}) >> nil())

    def test_idle_prefix(self):
        term = parse_term("idle : NIL")
        assert term.action.is_idle

    def test_multi_resource_action(self):
        term = parse_term("{(cpu,1),(bus,2)} : NIL")
        assert term.action is Action([("cpu", 1), ("bus", 2)])

    def test_send_event(self):
        term = parse_term("(done!,1) . NIL")
        assert term is (send("done", 1) >> nil())

    def test_recv_event(self):
        term = parse_term("(go?,2) . NIL")
        assert term is (recv("go", 2) >> nil())

    def test_tau_event(self):
        term = parse_term("(tau,3) . NIL")
        assert isinstance(term, EventPrefix)
        assert term.label.is_tau

    def test_tau_with_via(self):
        term = parse_term("(tau@done,3) . NIL")
        assert term.label.via == "done"

    def test_choice(self):
        term = parse_term("{(cpu,1)} : NIL + (e!,1) . NIL")
        expected = choice(
            action({"cpu": 1}) >> nil(), send("e", 1) >> nil()
        )
        assert term is expected

    def test_parallel(self):
        term = parse_term("A || B")
        assert term is parallel(proc("A"), proc("B"))

    def test_restriction(self):
        term = parse_term("(A || B) \\ {e, f}")
        assert term is restrict(parallel(proc("A"), proc("B")), ["e", "f"])

    def test_parenthesized_term_not_event(self):
        term = parse_term("(A || B)")
        assert term is parallel(proc("A"), proc("B"))

    def test_proc_ref_with_args(self):
        term = parse_term("P(1, e + 1)")
        assert isinstance(term, ProcRef)
        assert term.args[0] == 1
        assert term.args[1].free_params() == frozenset({"e"})

    def test_guard(self):
        term = parse_term("[e < 3] {(cpu,1)} : P(e + 1)")
        assert isinstance(term, Guard)

    def test_close(self):
        term = parse_term("close(A, {cpu, bus})")
        assert term.resources == frozenset({"cpu", "bus"})

    def test_scope_full(self):
        term = parse_term(
            "scope(A; 10; except fin -> B; timeout -> C; interrupt -> D)"
        )
        assert isinstance(term, Scope)
        assert term.bound == 10
        assert term.exception == "fin"
        assert term.success is proc("B")
        assert term.timeout is proc("C")
        assert term.interrupt is proc("D")

    def test_scope_infinite(self):
        term = parse_term("scope(A; inf)")
        assert term.bound is None

    def test_comments_ignored(self):
        term = parse_term("-- a comment\nNIL -- trailing")
        assert term is nil()

    def test_priority_expression(self):
        term = parse_term("{(cpu, dmax - d + s + 1)} : NIL")
        assert not term.action.is_ground


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(AcsrSyntaxError):
            parse_term("NIL NIL")

    def test_unbalanced_braces(self):
        with pytest.raises(AcsrSyntaxError):
            parse_term("{(cpu,1) : NIL")

    def test_bad_event_direction(self):
        with pytest.raises(AcsrSyntaxError):
            parse_term("(e,1) . NIL")

    def test_error_carries_location(self):
        with pytest.raises(AcsrSyntaxError) as excinfo:
            parse_term("{(cpu,1)} :\n  @@")
        assert excinfo.value.line == 2

    def test_scope_bound_must_be_constant(self):
        with pytest.raises(AcsrSyntaxError):
            parse_term("scope(A; n)")


class TestFileParsing:
    SOURCE = """
    -- Figure 2 of the paper
    process Simple = {(cpu,1)} : {(bus,1),(cpu,1)} : (done!,1) . Simple;
    process Recv = (done?,1) . Recv + idle : Recv;
    system (Simple || Recv) \\ {done};
    """

    def test_parse_definitions(self):
        env, root = parse_env(self.SOURCE)
        assert "Simple" in env
        assert "Recv" in env
        assert root is not None

    def test_parsed_system_runs(self):
        env, root = parse_env(self.SOURCE)
        system = env.close(root)
        steps = system.prioritized_steps()
        assert len(steps) == 1

    def test_parameterized_definition(self):
        env, _ = parse_env(
            "process Count(n) = [n < 3] {(cpu,1)} : Count(n + 1);"
        )
        definition = env["Count"]
        assert definition.params == ("n",)

    def test_duplicate_system_rejected(self):
        with pytest.raises(AcsrSyntaxError):
            parse_env("system NIL; system NIL;")


class TestRoundTrip:
    CASES = [
        "NIL",
        "{(cpu,1)} : NIL",
        "idle : P",
        "(done!,1) . NIL",
        "(go?,2) . P(1, 2)",
        "{(bus,1),(cpu,1)} : (done!,1) . Simple",
        "P + Q",
        "P || Q || R",
        "(P || Q) \\ {e}",
        "close(P, {cpu})",
        "scope(P; 10; except fin -> Q; timeout -> R; interrupt -> S)",
        "scope(P; inf)",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parse_print_parse(self, source):
        term = parse_term(source)
        printed = format_term(term)
        assert parse_term(printed) is term

    def test_env_roundtrip(self):
        env, root = parse_env(TestFileParsing.SOURCE)
        printed = format_env(env, root)
        env2, root2 = parse_env(printed)
        assert root2 is root
        assert format_env(env2, root2) == printed

    def test_open_term_roundtrip(self):
        source = "[e < 3] {(cpu, e + 1)} : Count(e + 1, s)"
        term = parse_term(source)
        printed = format_term(term)
        reparsed = parse_term(printed)
        # Guards intern by identity, so compare via instantiation.
        assert reparsed.instantiate({"e": 1, "s": 0}) is term.instantiate(
            {"e": 1, "s": 0}
        )
        assert reparsed.instantiate({"e": 5, "s": 0}) is term.instantiate(
            {"e": 5, "s": 0}
        )
