"""Regression tests for the simulation default horizon and the
honest ``response_times`` semantics.

Two pinned bugs:

* ``simulate()`` used ``hyperperiod + max_offset`` as its default
  window, one hyperperiod short of the Leung-Merrill exact window
  ``max_offset + 2 * hyperperiod`` -- so an offset-bearing set whose
  first miss falls in the second hyperperiod printed a clean run from
  ``repro simulate`` and the report's cheddar-style-sim row.
* ``SimulationResult.response_times`` seeded every task at 0 and only
  updated on completion, so a task whose every job missed and was
  abandoned reported an observed worst-case response of 0.
"""

import pytest

from repro.aadl.builder import SystemBuilder
from repro.analysis import compare_with_baselines
from repro.cli import main
from repro.sched.simulation import exact_simulation_horizon, simulate
from repro.sched.taskmodel import PeriodicTask, TaskSet

# First miss under RM at t=14, inside [H + O_max, O_max + 2H) = [11, 19):
# the pre-fix default horizon (11) showed a clean run.
LATE_MISS_TASKS = [
    PeriodicTask("a", 2, 4, deadline=2, offset=3),
    PeriodicTask("b", 4, 8, deadline=6, offset=0),
]

LATE_MISS_AADL = """
processor CPU
  properties
    Scheduling_Protocol => RMS;
end CPU;
thread T0
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 2 ms;
    Dispatch_Offset => 3 ms;
end T0;
thread T1
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 4 ms .. 4 ms;
    Compute_Deadline => 6 ms;
end T1;
system S end S;
system implementation S.impl
  subcomponents
    cpu: processor CPU;
    a: thread T0;
    b: thread T1;
  properties
    Actual_Processor_Binding => reference(cpu) applies to a;
    Actual_Processor_Binding => reference(cpu) applies to b;
end S.impl;
"""


def late_miss_set() -> TaskSet:
    return TaskSet(list(LATE_MISS_TASKS))


class TestExactHorizonHelper:
    def test_synchronous_is_one_hyperperiod(self):
        tasks = TaskSet(
            [PeriodicTask("a", 1, 4), PeriodicTask("b", 2, 8)]
        )
        assert exact_simulation_horizon(tasks) == 8

    def test_offsets_use_leung_merrill_window(self):
        tasks = late_miss_set()
        assert tasks.hyperperiod == 8
        assert exact_simulation_horizon(tasks) == 3 + 2 * 8

    def test_overutilized_has_no_exact_window(self):
        tasks = TaskSet(
            [
                PeriodicTask("a", 3, 4, offset=1),
                PeriodicTask("b", 2, 4),
            ]
        )
        assert tasks.utilization > 1.0
        assert exact_simulation_horizon(tasks) is None


class TestSecondHyperperiodMiss:
    def test_default_horizon_catches_second_hyperperiod_miss(self):
        tasks = late_miss_set()
        result = simulate(tasks, policy="rate")
        assert not result.schedulable
        first = min(t for _, t in result.misses)
        hyper, max_offset = tasks.hyperperiod, 3
        assert hyper + max_offset <= first < max_offset + 2 * hyper

    def test_prefix_window_misleadingly_clean(self):
        # Documents why the old default was wrong: the short window
        # really does contain no miss.
        tasks = late_miss_set()
        short = simulate(tasks, policy="rate", horizon=8 + 3)
        assert short.schedulable

    def test_cli_simulate_exits_one(self, tmp_path):
        path = tmp_path / "late_miss.aadl"
        path.write_text(LATE_MISS_AADL)
        assert main(["simulate", str(path)]) == 1

    def test_report_sim_row_unschedulable(self):
        builder = SystemBuilder("LateMiss")
        cpu = builder.processor("cpu", scheduling="RMS")
        builder.thread(
            "a",
            dispatch="Periodic",
            compute_time=2,
            deadline=2,
            period=4,
            offset=3,
            processor=cpu,
        )
        builder.thread(
            "b",
            dispatch="Periodic",
            compute_time=4,
            deadline=6,
            period=8,
            processor=cpu,
        )
        instance = builder.instantiate()
        rows = compare_with_baselines(instance)
        methods = {row.method: row.verdict for row in rows}
        assert methods["cheddar-style-sim"] is False


class TestResponseTimesHonesty:
    def test_never_completing_task_reports_none(self):
        # "hog" saturates the processor; "starved" is abandoned at
        # every deadline and never completes a single job.
        tasks = TaskSet(
            [
                PeriodicTask("hog", 1, 1),
                PeriodicTask("starved", 1, 4),
            ]
        )
        result = simulate(tasks, policy="rate")
        assert not result.schedulable
        assert result.response_times["starved"] is None
        assert result.response_times["hog"] == 1

    def test_completed_tasks_keep_worst_observed(self):
        tasks = TaskSet(
            [PeriodicTask("a", 1, 4), PeriodicTask("b", 2, 8)]
        )
        result = simulate(tasks, policy="rate")
        assert result.schedulable
        assert result.response_times["a"] == 1
        assert result.response_times["b"] == 3
