"""Tests of end-to-end latency observers (paper S5)."""

import pytest

from repro.errors import AnalysisError
from repro.aadl.gallery import cruise_control, two_periodic_threads
from repro.aadl.properties import ms
from repro.analysis import FlowSpec, Verdict, check_latency


class TestFlowSpec:
    def test_int_bound_is_milliseconds(self):
        spec = FlowSpec("a", "b", 20)
        assert spec.bound == ms(20)

    def test_default_flow_id(self):
        spec = FlowSpec("a", "b", ms(20))
        assert spec.flow_id == "a__b"

    def test_explicit_flow_id(self):
        spec = FlowSpec("a", "b", ms(20), flow_id="critical")
        assert spec.flow_id == "critical"


class TestChecks:
    def test_requires_flows(self):
        with pytest.raises(AnalysisError):
            check_latency(two_periodic_threads(), [])

    def test_rejects_unknown_thread(self):
        with pytest.raises(AnalysisError):
            check_latency(
                two_periodic_threads(),
                [FlowSpec("TwoThreads.fast", "TwoThreads.ghost", ms(8))],
            )

    def test_generous_bound_passes(self):
        result = check_latency(
            cruise_control(),
            [
                FlowSpec(
                    "CruiseControl.hci.refspeed",
                    "CruiseControl.ccl.cruise1",
                    ms(50),
                )
            ],
        )
        assert result.verdict is Verdict.SCHEDULABLE

    def test_tight_bound_fails_with_flow_events(self):
        result = check_latency(
            cruise_control(),
            [
                FlowSpec(
                    "CruiseControl.hci.refspeed",
                    "CruiseControl.ccl.cruise1",
                    ms(10),
                )
            ],
        )
        assert result.verdict is Verdict.UNSCHEDULABLE
        kinds = [e.kind for e in result.scenario.events]
        assert "flow_start" in kinds
        # The violation is a start with no matching end: after the last
        # flow_start the trace deadlocks without a flow_end.
        last_start = max(
            i for i, k in enumerate(kinds) if k == "flow_start"
        )
        assert "flow_end" not in kinds[last_start + 1 :]

    def test_bound_sweep_monotone(self):
        """There is a crossover bound: tighter bounds fail, looser pass."""
        verdicts = []
        for bound in (10, 20, 30, 40, 50, 60):
            result = check_latency(
                cruise_control(),
                [
                    FlowSpec(
                        "CruiseControl.hci.refspeed",
                        "CruiseControl.ccl.cruise1",
                        ms(bound),
                    )
                ],
            )
            verdicts.append(result.verdict is Verdict.SCHEDULABLE)
        # Once satisfiable, stays satisfiable.
        first_pass = verdicts.index(True)
        assert all(verdicts[first_pass:])
        assert not any(verdicts[:first_pass])

    def test_multiple_flows(self):
        result = check_latency(
            cruise_control(),
            [
                FlowSpec(
                    "CruiseControl.hci.refspeed",
                    "CruiseControl.ccl.cruise1",
                    ms(60),
                ),
                FlowSpec(
                    "CruiseControl.ccl.cruise1",
                    "CruiseControl.ccl.cruise2",
                    ms(110),
                ),
            ],
        )
        assert result.verdict is Verdict.SCHEDULABLE
