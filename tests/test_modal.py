"""Tests of the modal subsystem: the mode automaton, the transient
machinery, and the transition-aware :func:`repro.modal.analyze_modal`."""

import pytest

from repro.aadl import parse_model
from repro.aadl.gallery import fault_recovery, fault_recovery_text
from repro.analysis import Verdict
from repro.errors import AadlLegalityError, AnalysisError
from repro.modal import (
    MODAL_FAULTS,
    ModalResult,
    ModeAutomaton,
    analyze_modal,
    check_transition,
    simulate_transition,
    transient_union_check,
    union_task_set,
)
from repro.sched.taskmodel import PeriodicTask


def _automaton(text, impl="Plant.impl"):
    model = parse_model(text)
    return ModeAutomaton.from_implementation(
        model, model.implementation(impl)
    )


NO_TRANSITIONS = """
thread A
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Compute_Deadline => 8 ms;
end A;
system S end S;
system implementation S.impl
  subcomponents
    a: thread A in modes (night);
  modes
    day: initial mode;
    night: mode;
end S.impl;
"""


class TestModeAutomaton:
    def test_reachability_from_initial(self):
        automaton = _automaton(fault_recovery_text())
        assert set(automaton.reachable_modes()) == {
            "nominal", "error", "recovery",
        }
        assert automaton.unreachable_modes() == ("maintenance",)

    def test_no_transitions_keeps_every_mode(self):
        """Transitionless modal models keep the historical reading:
        every mode is a possible externally-chosen configuration."""
        automaton = _automaton(NO_TRANSITIONS, "S.impl")
        assert set(automaton.reachable_modes()) == {"day", "night"}
        assert automaton.unreachable_modes() == ()

    def test_edge_deltas(self):
        automaton = _automaton(fault_recovery_text())
        by_label = {e.label: e for e in automaton.edges}
        t0 = by_label["nominal -[monitor.fault]-> error"]
        # filter runs only in nominal, alarm only in error.
        assert t0.activated == ("alarm",)
        assert t0.deactivated == ("filter",)
        t2 = by_label["recovery -[monitor.done]-> nominal"]
        assert t2.activated == ("filter",)
        assert t2.deactivated == ("recover",)

    def test_reachable_edges_exclude_unreachable_sources(self):
        text = fault_recovery_text().replace(
            "t2: recovery -[monitor.done]-> nominal;",
            "t2: recovery -[monitor.done]-> nominal;\n"
            "    t3: maintenance -[monitor.done]-> nominal;",
        )
        automaton = _automaton(text)
        assert len(automaton.edges) == 4
        labels = {e.label for e in automaton.reachable_edges()}
        assert "maintenance -[monitor.done]-> nominal" not in labels

    def test_bad_trigger_is_a_violation(self):
        text = fault_recovery_text().replace("monitor.fault", "monitor.ghost")
        automaton = _automaton(text)
        assert any("ghost" in v for v in automaton.violations)


class TestUnionTaskSet:
    def test_disjoint_union_keeps_both_sides(self):
        old = [PeriodicTask("a", wcet=1, period=4)]
        new = [PeriodicTask("b", wcet=2, period=8)]
        union = union_task_set(old, new)
        assert {t.name for t in union} == {"a", "b"}

    def test_continued_task_contributes_once(self):
        task = PeriodicTask("a", wcet=1, period=4)
        union = union_task_set([task], [task])
        assert len(union) == 1

    def test_parameter_conflict_keeps_the_worst_case(self):
        old = [PeriodicTask("a", wcet=1, period=8, deadline=8)]
        new = [PeriodicTask("a", wcet=2, period=4, deadline=3)]
        merged = union_task_set(old, new)[0]
        assert merged.wcet == 2
        assert merged.period == 4
        assert merged.deadline == 3

    def test_empty_union_rejected(self):
        with pytest.raises(AnalysisError):
            union_task_set([], [])


class TestTransientUnionCheck:
    def test_schedulable_union_proves_the_transient(self):
        old = [PeriodicTask("a", wcet=1, period=4)]
        new = [PeriodicTask("b", wcet=2, period=8)]
        assert transient_union_check(old, new, ordering="rate") is True

    def test_overloaded_union_is_undecided_not_false(self):
        """A union over 100% utilization can still be transient-safe
        (the overload is never sustained), so the analytic test
        abstains rather than concluding unschedulability."""
        old = [PeriodicTask("a", wcet=3, period=4)]
        new = [PeriodicTask("b", wcet=3, period=4)]
        assert (
            transient_union_check(old, new, ordering="rate") is None
        )

    def test_no_analytic_test_abstains(self):
        old = [PeriodicTask("a", wcet=1, period=4)]
        assert transient_union_check(old, []) is None


class TestSimulateTransition:
    def test_carry_over_job_keeps_its_deadline(self):
        """An in-flight old-mode job completes under new-mode
        contention; here the new higher-rate task starves it past its
        deadline -- the case the unsound clean-restart shortcut would
        miss."""
        old = [PeriodicTask("slow", wcet=4, period=8)]
        new = [PeriodicTask("fast", wcet=3, period=4)]
        ok, detail = simulate_transition(
            old, new, switch=1, policy="rate", window=16
        )
        assert ok is False
        assert "slow" in detail

    def test_clean_switch_is_miss_free(self):
        old = [PeriodicTask("a", wcet=1, period=4)]
        new = [PeriodicTask("b", wcet=1, period=4)]
        ok, detail = simulate_transition(
            old, new, switch=4, policy="rate", window=16
        )
        assert ok is True
        assert detail is None


class TestCheckTransition:
    def test_empty_switch_is_trivially_safe(self):
        check = check_transition([], [])
        assert check.schedulable is True
        assert check.decided_by == "empty"

    def test_analytic_union_fast_path(self):
        old = [PeriodicTask("a", wcet=1, period=4)]
        new = [PeriodicTask("b", wcet=2, period=8)]
        check = check_transition(
            old, new, ordering="rate", policy="rate"
        )
        assert check.schedulable is True
        assert check.decided_by == "transient-union-rta"
        assert not check.escalated

    def test_escalation_decides_what_the_union_cannot(self):
        """Union U > 1 (analytic abstains) but every switch phasing is
        miss-free: the exhaustive simulation settles it."""
        old = [PeriodicTask("a", wcet=2, period=4)]
        new = [PeriodicTask("b", wcet=3, period=4)]
        check = check_transition(
            old, new, ordering="rate", policy="rate"
        )
        assert check.schedulable is True
        assert check.decided_by == "transient-simulation"
        assert check.escalated

    def test_transient_miss_is_found(self):
        old = [PeriodicTask("slow", wcet=4, period=8)]
        new = [PeriodicTask("fast", wcet=3, period=4)]
        check = check_transition(
            old, new, ordering="rate", policy="rate"
        )
        assert check.schedulable is False
        assert "misses" in check.detail

    def test_shrink_window_fault_hides_the_miss(self):
        """The registered defect drops carry-over and truncates the
        window -- exactly the bug the oracle campaign must catch."""
        old = [PeriodicTask("slow", wcet=4, period=8)]
        new = [PeriodicTask("fast", wcet=3, period=4)]
        honest = check_transition(
            old, new, ordering="rate", policy="rate"
        )
        faulty = check_transition(
            old, new, ordering="rate", policy="rate",
            fault="shrink-transient-window",
        )
        assert honest.schedulable is False
        assert faulty.schedulable is True

    def test_unknown_fault_rejected(self):
        with pytest.raises(AnalysisError):
            check_transition(
                [PeriodicTask("a", wcet=1, period=4)], [],
                policy="rate", fault="no-such-fault",
            )
        assert MODAL_FAULTS == ("shrink-transient-window",)

    def test_phasing_cap_yields_unknown(self):
        old = [PeriodicTask("a", wcet=4, period=7)]
        new = [PeriodicTask("b", wcet=6, period=8)]
        check = check_transition(
            old, new, ordering="rate", policy="rate", max_phasings=4
        )
        assert check.schedulable is None
        assert "phasing cap" in check.detail

    def test_window_cap_yields_unknown(self):
        old = [PeriodicTask("a", wcet=3, period=4)]
        new = [PeriodicTask("b", wcet=3, period=4)]
        check = check_transition(
            old, new, ordering="rate", policy="rate", max_window=2
        )
        assert check.schedulable is None
        assert "exceeds the cap" in check.detail

    def test_no_policy_abstains(self):
        old = [PeriodicTask("a", wcet=3, period=4)]
        new = [PeriodicTask("b", wcet=3, period=4)]
        check = check_transition(old, new)
        assert check.schedulable is None
        assert check.decided_by == "inapplicable"


class TestAnalyzeModal:
    def test_synchronous_gallery_verdict(self):
        model = parse_model(fault_recovery_text())
        result = analyze_modal(model, "Plant.impl")
        assert isinstance(result, ModalResult)
        assert result.verdict is Verdict.SCHEDULABLE
        assert len(result.transitions) == 3
        assert all(
            o.decided_by == "hyperperiod-boundary"
            for o in result.transitions
        )
        assert result.unreachable_modes == ("maintenance",)
        # maintenance (sweeper alone over-utilizes) must not count.
        assert "maintenance" not in result.steady.per_mode

    def test_asynchronous_gallery_escalates(self):
        model = parse_model(fault_recovery_text())
        result = analyze_modal(
            model, "Plant.impl", protocol="asynchronous"
        )
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.stats.modal_transitions_checked == 3
        assert result.stats.modal_transient_escalations >= 1

    def test_format_renders_the_transition_trail(self):
        model = parse_model(fault_recovery_text())
        text = analyze_modal(model, "Plant.impl").format()
        assert "protocol: synchronous" in text
        assert "nominal -[monitor.fault]-> error" in text
        assert "unreachable from the initial mode" in text

    def test_unknown_protocol_rejected(self):
        model = parse_model(fault_recovery_text())
        with pytest.raises(AnalysisError):
            analyze_modal(model, "Plant.impl", protocol="eventual")

    def test_modeless_root_rejected(self):
        from repro.aadl.gallery import cruise_control_text

        model = parse_model(cruise_control_text())
        with pytest.raises(AnalysisError):
            analyze_modal(model, "CruiseControl.impl")

    def test_illegal_mode_declarations_rejected(self):
        text = fault_recovery_text().replace(
            "monitor.fault", "monitor.ghost"
        )
        with pytest.raises(AadlLegalityError):
            analyze_modal(parse_model(text), "Plant.impl")

    def test_gallery_instance_starts_nominal(self):
        instance = fault_recovery()
        assert instance.active_modes == {"Plant": "nominal"}
        assert "sweeper" not in instance.children
