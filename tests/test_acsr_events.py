"""Unit tests for event labels and synchronization."""

import pytest

from repro.errors import AcsrSemanticsError
from repro.acsr.expressions import var
from repro.acsr.events import IN, OUT, TAU, EventLabel, event_label, tau_label


class TestConstruction:
    def test_interning(self):
        assert EventLabel("e", IN, 1) is EventLabel("e", IN, 1)

    def test_direction_required(self):
        with pytest.raises(AcsrSemanticsError):
            EventLabel("e", "x", 1)

    def test_tau_has_no_direction(self):
        with pytest.raises(AcsrSemanticsError):
            EventLabel(TAU, IN, 1)

    def test_only_tau_carries_via(self):
        with pytest.raises(AcsrSemanticsError):
            EventLabel("e", IN, 1, via="x")

    def test_negative_priority_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            EventLabel("e", IN, -1)

    def test_flags(self):
        assert EventLabel("e", IN, 1).is_input
        assert EventLabel("e", OUT, 1).is_output
        assert tau_label(1).is_tau


class TestSynchronization:
    def test_matches_complementary(self):
        send = event_label("e", OUT, 2)
        receive = event_label("e", IN, 3)
        assert send.matches(receive)
        assert receive.matches(send)

    def test_same_direction_does_not_match(self):
        assert not event_label("e", OUT, 1).matches(event_label("e", OUT, 1))

    def test_different_names_do_not_match(self):
        assert not event_label("e", OUT, 1).matches(event_label("f", IN, 1))

    def test_tau_never_matches(self):
        assert not tau_label(1).matches(event_label("e", IN, 1))

    def test_synchronize_sums_priorities(self):
        # ACSR: complementary event priorities add on synchronization.
        tau = event_label("e", OUT, 2).synchronize(event_label("e", IN, 3))
        assert tau.is_tau
        assert tau.int_priority() == 5
        assert tau.via == "e"

    def test_synchronize_mismatched_raises(self):
        with pytest.raises(AcsrSemanticsError):
            event_label("e", OUT, 1).synchronize(event_label("f", IN, 1))

    def test_complement(self):
        assert event_label("e", OUT, 2).complement() is event_label("e", IN, 2)

    def test_tau_has_no_complement(self):
        with pytest.raises(AcsrSemanticsError):
            tau_label(1).complement()


class TestSymbolic:
    def test_instantiate(self):
        label = EventLabel("e", IN, var("p"))
        assert label.instantiate({"p": 4}) is EventLabel("e", IN, 4)

    def test_instantiate_negative_rejected(self):
        label = EventLabel("e", IN, var("p") - 3)
        with pytest.raises(AcsrSemanticsError):
            label.instantiate({"p": 1})

    def test_int_priority_on_symbolic_raises(self):
        with pytest.raises(AcsrSemanticsError):
            EventLabel("e", IN, var("p")).int_priority()

    def test_free_params(self):
        assert EventLabel("e", IN, var("p")).free_params() == frozenset({"p"})
        assert EventLabel("e", IN, 1).free_params() == frozenset()


class TestRendering:
    def test_event_str(self):
        assert str(event_label("done", OUT, 1)) == "(done!,1)"
        assert str(event_label("go", IN, 2)) == "(go?,2)"

    def test_tau_str(self):
        assert str(tau_label(2)) == "(tau,2)"
        assert str(tau_label(2, via="done")) == "(tau@done,2)"
