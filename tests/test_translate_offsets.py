"""Tests of Dispatch_Offset: phase-shifted periodic dispatching.

Phase offsets showcase the approach's reach: classical synchronous
analysis (RTA) assumes a simultaneous critical instant and rejects sets
that a phased schedule runs cleanly -- the exhaustive ACSR exploration
verifies the phased system exactly.
"""

import pytest

from repro.errors import QuantizationError
from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis import Verdict, analyze_model
from repro.sched import extract_task_set, rta_schedulable, simulate
from repro.translate import translate
from repro.translate.quantum import TimingQuantizer
from repro.versa import Explorer


def two_tight_threads(offset: int):
    """Two C=2, T=8, D=2 threads: simultaneous release starves the
    lower-priority one; an offset >= 2 separates them."""
    b = SystemBuilder("Off")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    b.thread(
        "a",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(2), ms(2)),
        deadline=ms(2),
        processor=cpu,
    )
    b.thread(
        "b",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(2), ms(2)),
        deadline=ms(2),
        processor=cpu,
        offset=ms(offset) if offset else None,
    )
    return b.instantiate()


class TestOffsetSeparation:
    def test_synchronous_release_misses(self):
        result = analyze_model(two_tight_threads(0))
        assert result.verdict is Verdict.UNSCHEDULABLE

    @pytest.mark.parametrize("offset", [2, 3, 4, 6])
    def test_phased_release_schedulable(self, offset):
        result = analyze_model(two_tight_threads(offset))
        assert result.verdict is Verdict.SCHEDULABLE

    def test_insufficient_offset_still_misses(self):
        result = analyze_model(two_tight_threads(1))
        assert result.verdict is Verdict.UNSCHEDULABLE

    def test_classical_rta_cannot_see_the_offset(self):
        """RTA's synchronous worst case rejects the phased set that the
        exhaustive exploration proves schedulable."""
        inst = two_tight_threads(4)
        tasks = extract_task_set(inst, inst.processors()[0])
        assert not rta_schedulable(tasks, ordering="rate")
        assert analyze_model(inst).verdict is Verdict.SCHEDULABLE

    def test_simulation_agrees_with_acsr_on_offsets(self):
        for offset in (0, 1, 2, 4):
            inst = two_tight_threads(offset)
            tasks = extract_task_set(inst, inst.processors()[0])
            sim_ok = simulate(tasks, policy="rate").schedulable
            acsr_ok = (
                analyze_model(inst).verdict is Verdict.SCHEDULABLE
            )
            assert sim_ok == acsr_ok, f"offset={offset}"


class TestOffsetMechanics:
    def test_first_dispatch_at_offset(self):
        translation = translate(two_tight_threads(3))
        from repro.acsr.events import EventLabel

        exploration = Explorer(
            translation.system, store_transitions=True
        ).run()
        dispatch_b = "dispatch$Off_b"
        times = set()
        for state in exploration.states():
            for label, _ in exploration.transitions_of(state):
                if isinstance(label, EventLabel) and label.via == dispatch_b:
                    times.add(exploration.trace_to(state).duration % 8)
        assert times == {3}

    def test_offset_countdown_state_registered(self):
        translation = translate(two_tight_threads(3))
        offsets = translation.names.names_of_kind("dispatcher_offset")
        assert list(offsets.values()) == ["Off.b"]

    def test_zero_offset_adds_no_state(self):
        translation = translate(two_tight_threads(0))
        assert translation.names.names_of_kind("dispatcher_offset") == {}

    def test_offset_must_be_below_period(self):
        with pytest.raises(QuantizationError):
            translate(two_tight_threads(8))

    def test_quantizer_records_offset(self):
        inst = two_tight_threads(4)
        thread_b = [t for t in inst.threads() if t.name == "b"][0]
        timing = TimingQuantizer(ms(1)).thread_timing(thread_b)
        assert timing.offset == 4
        thread_a = [t for t in inst.threads() if t.name == "a"][0]
        assert TimingQuantizer(ms(1)).thread_timing(thread_a).offset == 0
