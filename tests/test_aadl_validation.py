"""Tests of the paper S4.1 translation assumptions."""

import pytest

from repro.errors import AadlLegalityError
from repro.aadl import parse_model, instantiate
from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import (
    DispatchProtocol,
    SchedulingProtocol,
    ms,
)
from repro.aadl.validation import (
    check_translation_assumptions,
    collect_violations,
)


def build_valid():
    b = SystemBuilder("V")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    b.thread(
        "t",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(10),
        compute_time=(ms(1), ms(2)),
        deadline=ms(10),
        processor=cpu,
    )
    return b.instantiate(validate=False)


class TestValidModel:
    def test_no_violations(self):
        assert collect_violations(build_valid()) == []

    def test_check_passes(self):
        check_translation_assumptions(build_valid())


class TestStructuralViolations:
    def test_no_threads(self):
        b = SystemBuilder("V")
        b.processor("cpu")
        inst = b.instantiate(validate=False)
        violations = collect_violations(inst)
        assert any("no thread" in v for v in violations)

    def test_no_processors(self):
        b = SystemBuilder("V")
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(10),
            compute_time=(ms(1), ms(1)),
            deadline=ms(10),
        )
        violations = collect_violations(b.instantiate(validate=False))
        assert any("no processor" in v for v in violations)
        assert any("not bound" in v for v in violations)

    def test_check_raises_with_all_problems(self):
        b = SystemBuilder("V")
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(10),
            compute_time=(ms(1), ms(1)),
            deadline=ms(10),
        )
        with pytest.raises(AadlLegalityError) as excinfo:
            check_translation_assumptions(b.instantiate(validate=False))
        message = str(excinfo.value)
        assert "no processor" in message and "not bound" in message


class TestPropertyViolations:
    SRC = """
    processor CPU
      properties
        Scheduling_Protocol => RMS;
    end CPU;
    thread T
    end T;
    system S end S;
    system implementation S.impl
      subcomponents
        t: thread T;
        cpu: processor CPU;
      properties
        Actual_Processor_Binding => reference(cpu) applies to t;
    end S.impl;
    """

    def test_missing_thread_properties(self):
        inst = instantiate(parse_model(self.SRC), "S.impl")
        violations = collect_violations(inst)
        assert any("Dispatch_Protocol" in v for v in violations)
        assert any("Compute_Execution_Time" in v for v in violations)
        assert any("Compute_Deadline" in v for v in violations)

    def test_periodic_requires_period(self):
        src = self.SRC.replace(
            "thread T\n    end T;",
            """thread T
      properties
        Dispatch_Protocol => Periodic;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Compute_Deadline => 5 ms;
    end T;""",
        )
        inst = instantiate(parse_model(src), "S.impl")
        violations = collect_violations(inst)
        assert any("lacks Period" in v for v in violations)

    def test_missing_scheduling_protocol(self):
        src = self.SRC.replace(
            "properties\n        Scheduling_Protocol => RMS;\n    end CPU;",
            "end CPU;",
        )
        inst = instantiate(parse_model(src), "S.impl")
        violations = collect_violations(inst)
        assert any("Scheduling_Protocol" in v for v in violations)

    def test_deadline_accepted_as_substitute(self):
        src = self.SRC.replace(
            "thread T\n    end T;",
            """thread T
      properties
        Dispatch_Protocol => Aperiodic;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Deadline => 5 ms;
    end T;""",
        )
        inst = instantiate(parse_model(src), "S.impl")
        violations = collect_violations(inst)
        assert not any("Compute_Deadline" in v for v in violations)


class TestEventConnectionAssumption:
    def test_sporadic_needs_incoming_connection(self):
        b = SystemBuilder("V")
        cpu = b.processor("cpu")
        consumer = b.thread(
            "consumer",
            dispatch=DispatchProtocol.SPORADIC,
            period=ms(10),
            compute_time=(ms(1), ms(1)),
            deadline=ms(10),
            processor=cpu,
        )
        consumer.in_event_port("trigger")
        violations = collect_violations(b.instantiate(validate=False))
        assert any("no incoming connection" in v for v in violations)

    def test_connected_sporadic_is_fine(self):
        from repro.aadl.gallery import sporadic_consumer

        assert collect_violations(sporadic_consumer()) == []


class TestHpfPriorities:
    def test_hpf_requires_priority(self):
        b = SystemBuilder("V")
        cpu = b.processor(
            "cpu", scheduling=SchedulingProtocol.HIGHEST_PRIORITY_FIRST
        )
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(10),
            compute_time=(ms(1), ms(1)),
            deadline=ms(10),
            processor=cpu,
        )
        violations = collect_violations(b.instantiate(validate=False))
        assert any("Priority" in v for v in violations)

    def test_hpf_with_priorities_ok(self):
        b = SystemBuilder("V")
        cpu = b.processor(
            "cpu", scheduling=SchedulingProtocol.HIGHEST_PRIORITY_FIRST
        )
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(10),
            compute_time=(ms(1), ms(1)),
            deadline=ms(10),
            processor=cpu,
            priority=3,
        )
        assert collect_violations(b.instantiate(validate=False)) == []


class TestModeViolations:
    """Declarative-level legality of mode declarations, shared between
    the ``validate`` report and :class:`repro.modal.ModeAutomaton`."""

    SRC = """
    thread A
      features
        fail: out event port;
    end A;
    system S end S;
    system implementation S.impl
      subcomponents
        a: thread A;
        b: thread A in modes (nominal);
      modes
        nominal: initial mode;
        recovery: mode;
        m1: nominal -[a.fail]-> recovery;
    end S.impl;
    """

    def _violations(self, src):
        from repro.aadl.validation import collect_mode_violations

        return collect_mode_violations(parse_model(src))

    def test_legal_declarations_pass(self):
        assert self._violations(self.SRC) == []

    def test_duplicate_initial_modes(self):
        src = self.SRC.replace(
            "recovery: mode;", "recovery: initial mode;"
        )
        violations = self._violations(src)
        assert any("duplicate initial modes" in v for v in violations)

    def test_missing_initial_mode(self):
        src = self.SRC.replace(
            "nominal: initial mode;", "nominal: mode;"
        )
        violations = self._violations(src)
        assert any("no initial mode" in v for v in violations)

    def test_trigger_on_unknown_subcomponent(self):
        src = self.SRC.replace("a.fail", "ghost.fail")
        violations = self._violations(src)
        assert any(
            "non-existent subcomponent 'ghost'" in v for v in violations
        )

    def test_trigger_on_unknown_port(self):
        src = self.SRC.replace("a.fail", "a.ghost")
        violations = self._violations(src)
        assert any(
            "non-existent port 'ghost'" in v for v in violations
        )

    def test_undeclared_transition_endpoints(self):
        src = self.SRC.replace(
            "m1: nominal -[a.fail]-> recovery;",
            "m1: limbo -[a.fail]-> nowhere;",
        )
        violations = self._violations(src)
        assert any("source mode 'limbo'" in v for v in violations)
        assert any("target mode 'nowhere'" in v for v in violations)
