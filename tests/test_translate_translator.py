"""Tests of the Algorithm 1 driver: whole-model translation."""

import pytest

from repro.errors import AadlLegalityError, TranslationError
from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import (
    aperiodic_worker,
    cruise_control,
    shared_bus_pair,
    sporadic_consumer,
    two_periodic_threads,
)
from repro.aadl.properties import (
    DispatchProtocol,
    OverflowHandlingProtocol,
    SchedulingProtocol,
    ms,
)
from repro.translate import (
    EventSendPattern,
    TranslationOptions,
    translate,
)
from repro.translate.translator import LatencyFlow
from repro.versa import Explorer, find_deadlock


class TestAlgorithm1Counts:
    def test_cruise_control_paper_claim(self):
        """Paper S4.1: 'the translation produces six ACSR processes that
        represent threads and six ACSR processes that represent
        dispatchers ... no queue processes are introduced.'"""
        result = translate(cruise_control())
        assert result.num_thread_processes == 6
        assert result.num_dispatchers == 6
        assert result.num_queue_processes == 0

    def test_queued_connection_count(self):
        result = translate(sporadic_consumer())
        assert result.num_queue_processes == 1

    def test_data_connections_get_no_queue(self):
        result = translate(two_periodic_threads())
        assert result.num_queue_processes == 0

    def test_definitions_registered(self):
        result = translate(two_periodic_threads())
        names = set(result.env.names())
        # Per thread: AD, C, F + dispatcher DP, DW, DI.
        assert sum(1 for n in names if n.startswith("AD$")) == 2
        assert sum(1 for n in names if n.startswith("DP$")) == 2


class TestRestriction:
    def test_all_internal_events_restricted(self):
        result = translate(sporadic_consumer())
        for qual in result.threads:
            sanitized = qual.replace(".", "_")
            assert f"dispatch${sanitized}" in result.restricted_events
            assert f"done${sanitized}" in result.restricted_events
        for conn_qual in result.queues:
            assert any(
                name.startswith("q$") for name in result.restricted_events
            )
            assert any(
                name.startswith("dq$") for name in result.restricted_events
            )

    def test_root_is_closed(self):
        result = translate(cruise_control())
        assert result.root.is_closed()


class TestBusRefinement:
    def test_bus_resource_recorded(self):
        result = translate(cruise_control())
        buses = result.names.names_of_kind("bus")
        assert list(buses.values()) == ["CruiseControl.net"]

    def test_cross_processor_bus_contention_analyzable(self):
        result = translate(shared_bus_pair())
        exploration = Explorer(result.system, max_states=500_000).run()
        assert exploration.completed
        # Both senders' final steps use the shared bus; the model must
        # still be schedulable (bus arbitration serializes them).
        assert exploration.deadlock_free


class TestSchedulingPolicies:
    @pytest.mark.parametrize(
        "protocol",
        [
            SchedulingProtocol.RATE_MONOTONIC,
            SchedulingProtocol.DEADLINE_MONOTONIC,
            SchedulingProtocol.EARLIEST_DEADLINE_FIRST,
            SchedulingProtocol.LEAST_LAXITY_FIRST,
        ],
    )
    def test_all_policies_translate_and_explore(self, protocol):
        inst = two_periodic_threads(scheduling=protocol)
        result = translate(inst)
        assert Explorer(result.system).run().deadlock_free

    def test_hpf_uses_explicit_priorities(self):
        inst = two_periodic_threads(
            scheduling=SchedulingProtocol.HIGHEST_PRIORITY_FIRST
        )
        result = translate(inst)
        priorities = {
            qual: t.priority.value for qual, t in result.threads.items()
        }
        assert priorities["TwoThreads.fast"] > priorities["TwoThreads.slow"]


class TestValidationIntegration:
    def test_invalid_model_rejected(self):
        b = SystemBuilder("Bad")
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(10),
            compute_time=(ms(1), ms(1)),
            deadline=ms(10),
        )
        inst = b.instantiate(validate=False)
        with pytest.raises(AadlLegalityError):
            translate(inst)

    def test_validation_can_be_skipped_but_binding_still_needed(self):
        b = SystemBuilder("Bad")
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(10),
            compute_time=(ms(1), ms(1)),
            deadline=ms(10),
        )
        inst = b.instantiate(validate=False)
        with pytest.raises(TranslationError):
            translate(inst, TranslationOptions(validate=False))


class TestEventPatterns:
    def test_default_at_completion(self):
        inst = sporadic_consumer()
        result = translate(inst)
        conn_qual = next(iter(result.queues))
        finish = result.env[
            result.threads["SporadicChain.producer"].skeleton_name.replace(
                "AD$", "F$"
            )
        ]
        # Finish chain starts with the enqueue event.
        assert finish.body.label.name.startswith("q$")

    def test_anytime_override(self):
        inst = sporadic_consumer()
        conn_qual = inst.connections[0].qualified_name
        result = translate(
            inst,
            TranslationOptions(
                pattern_overrides={conn_qual: EventSendPattern.ANYTIME}
            ),
        )
        exploration = Explorer(result.system, max_states=200_000).run()
        assert exploration.completed

    def test_anytime_enlarges_state_space(self):
        inst = sporadic_consumer()
        conn_qual = inst.connections[0].qualified_name
        base = Explorer(translate(inst).system, max_states=200_000).run()
        anytime = Explorer(
            translate(
                inst,
                TranslationOptions(
                    pattern_overrides={conn_qual: EventSendPattern.ANYTIME}
                ),
            ).system,
            max_states=200_000,
        ).run()
        assert anytime.num_states > base.num_states


class TestDeviceSources:
    def test_device_source_stub_generated(self):
        src = """
        processor CPU
          properties
            Scheduling_Protocol => DMS;
        end CPU;
        device Radar
          features
            ping: out event port;
        end Radar;
        thread Tracker
          features
            ping: in event port;
          properties
            Dispatch_Protocol => Sporadic;
            Period => 4 ms;
            Compute_Execution_Time => 1 ms .. 1 ms;
            Compute_Deadline => 4 ms;
        end Tracker;
        system S end S;
        system implementation S.impl
          subcomponents
            radar: device Radar;
            tracker: thread Tracker;
            cpu: processor CPU;
          connections
            c1: port radar.ping -> tracker.ping;
          properties
            Actual_Processor_Binding => reference(cpu) applies to tracker;
        end S.impl;
        """
        from repro.aadl import parse_model, instantiate

        inst = instantiate(parse_model(src), "S.impl")
        result = translate(inst)
        assert result.num_queue_processes == 1
        device_names = result.names.names_of_kind("device_source")
        assert len(device_names) == 1
        # Environment-driven arrivals at min separation 4 with C=1, D=4:
        # always schedulable.
        exploration = Explorer(result.system, max_states=200_000).run()
        assert exploration.completed and exploration.deadlock_free


class TestLatencyFlows:
    def test_observer_processes_added(self):
        inst = two_periodic_threads()
        flow = LatencyFlow(
            "f1", "TwoThreads.fast", "TwoThreads.slow", ms(8)
        )
        result = translate(inst, TranslationOptions(latency_flows=[flow]))
        assert "OBS$f1" in result.env.names()
        assert "obs_start$f1" in result.restricted_events

    def test_bound_too_small_rejected(self):
        inst = two_periodic_threads()
        flow = LatencyFlow(
            "f1", "TwoThreads.fast", "TwoThreads.slow", ms(0)
        )
        with pytest.raises(TranslationError):
            translate(inst, TranslationOptions(latency_flows=[flow]))


def _shared_access_model(*, reverse: bool) -> "SystemBuilder":
    """Two processors, two threads each, all four sharing one data
    classifier -- declared in opposite orders so dict insertion order
    differs while the model denotes the same system."""
    b = SystemBuilder("Ordered")
    cpus = {}
    specs = [
        ("alpha", "cpu_a", 2),
        ("beta", "cpu_a", 1),
        ("gamma", "cpu_b", 2),
        ("delta", "cpu_b", 1),
    ]
    order = list(reversed(specs)) if reverse else specs
    for _, cpu_name, _ in order:
        if cpu_name not in cpus:
            cpus[cpu_name] = b.processor(
                cpu_name, scheduling=SchedulingProtocol.HIGHEST_PRIORITY_FIRST
            )
    for name, cpu_name, priority in order:
        thread = b.thread(
            name,
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(8),
            compute_time=(ms(1), ms(1)),
            deadline=ms(8),
            processor=cpus[cpu_name],
            priority=priority,
        )
        thread.requires_data_access("d", classifier="SharedState")
    return b


class TestDeterministicOutput:
    def test_declaration_order_does_not_change_acsr(self):
        """Byte-for-byte identical ACSR from differently-ordered
        declarations: the held-resources pre-pass (and every other
        translator loop) must iterate in sorted order, or verdict-cache
        keys would depend on dict insertion order."""
        from repro.acsr.printer import format_env

        opts = TranslationOptions(use_priority_ceiling=True)
        first = translate(
            _shared_access_model(reverse=False).instantiate(), opts
        )
        second = translate(
            _shared_access_model(reverse=True).instantiate(), opts
        )
        assert format_env(first.env, first.root) == format_env(
            second.env, second.root
        )


class TestUnboundDiagnostic:
    def test_all_unbound_threads_reported_at_once(self):
        b = SystemBuilder("Unbound")
        b.processor("cpu")
        for name in ("one", "two", "three"):
            b.thread(
                name,
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(4),
                compute_time=(ms(1), ms(1)),
                deadline=ms(4),
            )
        with pytest.raises(TranslationError) as exc:
            translate(
                b.instantiate(validate=False),
                TranslationOptions(validate=False),
            )
        message = str(exc.value)
        assert "3 threads are not bound" in message
        for name in ("one", "two", "three"):
            assert f"Unbound.{name}" in message
        # Sorted, so the diagnostic is stable run to run.
        assert message.index("Unbound.one") < message.index("Unbound.three")
        assert message.index("Unbound.three") < message.index("Unbound.two")

    def test_single_unbound_thread_message(self):
        b = SystemBuilder("Solo")
        b.processor("cpu")
        b.thread(
            "only",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(4),
            compute_time=(ms(1), ms(1)),
            deadline=ms(4),
        )
        with pytest.raises(TranslationError, match="1 thread is not bound"):
            translate(
                b.instantiate(validate=False),
                TranslationOptions(validate=False),
            )


class TestCrossProcessorConnections:
    """The monolithic path must handle connections whose endpoints are
    bound to different processors (the compose fallback relies on it)."""

    def test_cross_processor_event_connection_translates(self):
        from repro.aadl.gallery import coupled_islands

        result = translate(coupled_islands())
        assert result.num_queue_processes == 1
        assert result.num_thread_processes == 4

    def test_cross_processor_chain_explores(self):
        from repro.aadl.gallery import coupled_islands
        from repro.analysis import Verdict, analyze_model

        result = analyze_model(coupled_islands())
        assert result.verdict is Verdict.SCHEDULABLE

    def test_cross_processor_miss_raises_remote_timeline(self):
        """An overloaded aperiodic on the far processor must show up in
        the raised scenario with its own dispatch/miss events."""
        from repro.analysis import Verdict, analyze_model

        b = SystemBuilder("FarMiss")
        cpu1 = b.processor("cpu1")
        cpu2 = b.processor("cpu2")
        producer = b.thread(
            "producer",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(4),
            compute_time=(ms(1), ms(1)),
            deadline=ms(4),
            processor=cpu1,
        )
        producer.out_event_port("kick")
        # steady hogs every other quantum of cpu2, so the 2 ms remote
        # job cannot fit inside its 2 ms deadline.
        b.thread(
            "steady",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(2),
            compute_time=(ms(1), ms(1)),
            deadline=ms(2),
            processor=cpu2,
            priority=2,
        )
        remote = b.thread(
            "remote",
            dispatch=DispatchProtocol.APERIODIC,
            compute_time=(ms(2), ms(2)),
            deadline=ms(2),
            processor=cpu2,
            priority=1,
        )
        remote.in_event_port("kick", queue_size=1)
        b.connect(producer, "kick", remote, "kick")
        result = analyze_model(b.instantiate())
        assert result.verdict is Verdict.UNSCHEDULABLE
        rendered = result.scenario.format()
        assert "FarMiss.remote" in rendered
        assert "deadline_miss" in rendered
