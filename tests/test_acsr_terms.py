"""Unit tests for term construction, canonicalization and instantiation."""

import pytest

from repro.errors import AcsrSemanticsError
from repro.acsr.expressions import var
from repro.acsr.resources import Action
from repro.acsr.terms import (
    NIL,
    ActionPrefix,
    Choice,
    Parallel,
    ProcRef,
    Restrict,
    Scope,
    action,
    choice,
    close,
    guard,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    scope,
    send,
    seq,
    tau,
)


class TestInterning:
    def test_nil_singleton(self):
        assert nil() is NIL

    def test_action_prefix_interned(self):
        a = action({"cpu": 1}) >> nil()
        b = action({"cpu": 1}) >> nil()
        assert a is b

    def test_proc_ref_interned(self):
        assert proc("P", 1, 2) is proc("P", 1, 2)
        assert proc("P", 1) is not proc("P", 2)


class TestChoiceCanonicalization:
    def test_flattens(self):
        a, b, c = proc("A"), proc("B"), proc("C")
        assert choice(choice(a, b), c) is choice(a, b, c)

    def test_commutative(self):
        a, b = proc("A"), proc("B")
        assert choice(a, b) is choice(b, a)

    def test_dedups(self):
        a, b = proc("A"), proc("B")
        assert choice(a, a, b) is choice(a, b)

    def test_nil_is_unit(self):
        a = proc("A")
        assert choice(a, NIL) is a

    def test_empty_choice_is_nil(self):
        assert choice() is NIL

    def test_operator(self):
        a, b = proc("A"), proc("B")
        assert (a + b) is choice(a, b)


class TestParallelCanonicalization:
    def test_flattens_and_commutes(self):
        a, b, c = proc("A"), proc("B"), proc("C")
        assert parallel(parallel(a, b), c) is parallel(c, b, a)

    def test_nil_is_kept(self):
        # NIL refuses time progress: it is NOT a unit of parallel.
        a = proc("A")
        composed = parallel(a, NIL)
        assert isinstance(composed, Parallel)
        assert NIL in composed.children

    def test_single_child_collapses(self):
        a = proc("A")
        assert parallel(a) is a

    def test_operator(self):
        a, b = proc("A"), proc("B")
        assert (a | b) is parallel(a, b)

    def test_duplicate_children_preserved(self):
        # Two copies of the same process are distinct components.
        a = proc("A")
        composed = parallel(a, a)
        assert isinstance(composed, Parallel)
        assert len(composed.children) == 2


class TestRestrictClose:
    def test_restrict_merges_nested(self):
        inner = restrict(proc("A"), ["x"])
        outer = restrict(inner, ["y"])
        assert isinstance(outer, Restrict)
        assert outer.names == frozenset({"x", "y"})
        assert outer.body is proc("A")

    def test_restrict_empty_is_noop(self):
        a = proc("A")
        assert restrict(a, []) is a

    def test_restrict_rejects_tau(self):
        with pytest.raises(AcsrSemanticsError):
            restrict(proc("A"), ["tau"])

    def test_close_merges_nested(self):
        merged = close(close(proc("A"), ["r"]), ["s"])
        assert merged.resources == frozenset({"r", "s"})

    def test_close_empty_is_noop(self):
        a = proc("A")
        assert close(a, []) is a


class TestScope:
    def test_zero_bound_normalizes_to_timeout(self):
        handler = proc("R")
        assert scope(proc("P"), bound=0, timeout=handler) is handler

    def test_negative_bound_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            scope(proc("P"), bound=-1)

    def test_infinite_bound(self):
        term = scope(proc("P"), bound=None)
        assert isinstance(term, Scope)
        assert term.bound is None

    def test_handlers_default_to_nil(self):
        term = scope(proc("P"), bound=5)
        assert term.success is NIL
        assert term.timeout is NIL
        assert term.interrupt is NIL


class TestPrefixBuilders:
    def test_chain_is_right_nested(self):
        term = action({"cpu": 1}) >> send("done", 1) >> nil()
        assert isinstance(term, ActionPrefix)
        assert term.continuation.label.name == "done"

    def test_seq_matches_rshift(self):
        via_seq = seq(action({"cpu": 1}), send("done", 1), nil())
        via_shift = action({"cpu": 1}) >> send("done", 1) >> nil()
        assert via_seq is via_shift

    def test_seq_must_end_with_term(self):
        with pytest.raises(AcsrSemanticsError):
            seq(action({"cpu": 1}), send("done", 1))

    def test_idle_is_empty_action(self):
        term = idle() >> nil()
        assert term.action.is_idle

    def test_tau_prefix(self):
        term = tau(2) >> nil()
        assert term.label.is_tau
        assert term.label.int_priority() == 2

    def test_then_equivalent_to_rshift(self):
        assert recv("go", 1).then(NIL) is (recv("go", 1) >> NIL)


class TestInstantiation:
    def test_guard_true_keeps_body(self):
        e = var("e")
        term = guard(e < 3, proc("P", e + 1))
        assert term.instantiate({"e": 1}) is proc("P", 2)

    def test_guard_false_becomes_nil(self):
        e = var("e")
        term = guard(e < 3, proc("P", e))
        assert term.instantiate({"e": 5}) is NIL

    def test_action_priorities_evaluate(self):
        p = var("p")
        term = action({"cpu": p}) >> nil()
        closed = term.instantiate({"p": 4})
        assert closed.action.priority_of("cpu") == 4

    def test_choice_with_false_guard_drops_branch(self):
        e = var("e")
        term = choice(
            guard(e < 3, proc("A")),
            guard(e >= 3, proc("B")),
        )
        assert term.instantiate({"e": 5}) is proc("B")

    def test_free_params_and_is_closed(self):
        e = var("e")
        open_term = proc("P", e)
        assert open_term.free_params() == frozenset({"e"})
        assert not open_term.is_closed()
        assert proc("P", 1).is_closed()

    def test_guarded_term_not_closed(self):
        from repro.acsr.expressions import TrueExpr

        term = guard(TrueExpr(), proc("P"))
        assert not term.is_closed()

    def test_scope_instantiates_handlers(self):
        e = var("e")
        term = scope(
            proc("P", e), bound=3, exception="x",
            success=proc("Q", e), timeout=proc("R", e),
        )
        closed = term.instantiate({"e": 7})
        assert closed.success is proc("Q", 7)
        assert closed.timeout is proc("R", 7)


class TestValidation:
    def test_action_prefix_requires_action(self):
        with pytest.raises(AcsrSemanticsError):
            ActionPrefix("not-an-action", NIL)

    def test_proc_rejects_float_args(self):
        with pytest.raises(AcsrSemanticsError):
            ProcRef("P", (1.5,))

    def test_proc_string_arg_becomes_param(self):
        ref = proc("P", "e")
        assert ref.free_params() == frozenset({"e"})
