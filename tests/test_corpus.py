"""Replay the committed regression corpus.

Every bundle under ``tests/corpus/`` is a fully agreed (or witnessed)
historical case; this suite re-runs each through today's pipeline and
oracles and demands the recorded verdict and agreement status hold.
A failure here means a behaviour change regressed a case the harness
once settled -- inspect with ``repro oracle replay <bundle>``.
"""

import glob
import os

import pytest

from repro.oracle import AgreementStatus, ReproBundle, replay_bundle

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
BUNDLES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def bundle_id(path):
    return os.path.splitext(os.path.basename(path))[0]


def test_corpus_is_populated():
    assert len(BUNDLES) >= 3, (
        "the regression corpus must hold at least three bundles"
    )


@pytest.mark.parametrize("path", BUNDLES, ids=bundle_id)
def test_bundle_replays_to_recorded_verdict(path):
    bundle = ReproBundle.load(path)
    assert bundle.kind == "regression"
    result = replay_bundle(bundle)
    assert result.verdict_matches, (
        f"replay verdict {result.pipeline.verdict.value!r} != recorded "
        f"{bundle.pipeline_verdict!r}; inspect with: "
        f"repro oracle replay {path}"
    )
    assert (
        result.classification.status is AgreementStatus.AGREED
    ), result.classification.conflicts


@pytest.mark.parametrize("path", BUNDLES, ids=bundle_id)
def test_bundle_aadl_text_is_current(path):
    """The stored AADL text must match what today's builder would emit
    for the stored task set (bundles double as golden files)."""
    bundle = ReproBundle.load(path)
    assert bundle.aadl == bundle.case.aadl_text()


def test_corpus_covers_interesting_regimes():
    cases = {bundle_id(path): ReproBundle.load(path) for path in BUNDLES}
    utilizations = {
        name: sum(
            task["wcet"] / task["period"]
            for task in bundle.case.tasks
        )
        for name, bundle in cases.items()
    }
    assert any(abs(u - 1.0) < 1e-9 for u in utilizations.values()), (
        "corpus must include a boundary-utilization case"
    )
    assert any(
        task["deadline"] < task["period"]
        for bundle in cases.values()
        for task in bundle.case.tasks
    ), "corpus must include a constrained-deadline case"
    assert any(
        any(task["offset"] > 0 for task in bundle.case.tasks)
        and bundle.pipeline_verdict == "schedulable"
        for bundle in cases.values()
    ), "corpus must include an offset-release case"
    assert any(
        bundle.pipeline_verdict == "unschedulable"
        for bundle in cases.values()
    ), "corpus must include an unschedulable witness"
