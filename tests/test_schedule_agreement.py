"""Quantum-by-quantum schedule agreement: ACSR vs the DES baseline.

For deterministic synchronous fixed-priority systems the prioritized ACSR
semantics admits exactly one timed behaviour; raising it to an AADL
activity timeline must reproduce the Cheddar-style simulator's schedule
slot for slot.  This ties together translator, prioritized semantics,
trace raising and the independent simulation baseline.
"""

import pytest

from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis.raising import RUNNING, raise_trace
from repro.sched import extract_task_set, simulate
from repro.translate import translate
from repro.versa import random_walk
from repro.versa.walk import event_first_policy


def acsr_schedule(instance, quanta: int):
    """Thread (or None) running in each of the first ``quanta`` quanta,
    per the prioritized ACSR semantics."""
    translation = translate(instance)
    # Deterministic systems have one timed path; drain events eagerly.
    trace = random_walk(
        translation.system,
        max_steps=quanta * (2 * len(translation.threads) + 2),
        seed=0,
        policy=event_first_policy,
    )
    scenario = raise_trace(translation, trace, deadlocked=False)
    schedule = []
    for t in range(min(quanta, scenario.duration)):
        running = [
            qual
            for qual, row in scenario.activity.items()
            if row[t] == RUNNING
        ]
        assert len(running) <= 1, "one cpu: at most one runner per quantum"
        schedule.append(running[0] if running else None)
    return schedule


def build(specs, scheduling=SchedulingProtocol.RATE_MONOTONIC):
    b = SystemBuilder("Agree")
    cpu = b.processor("cpu", scheduling=scheduling)
    for name, wcet, period in specs:
        b.thread(
            name,
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(period),
            compute_time=(ms(wcet), ms(wcet)),
            deadline=ms(period),
            processor=cpu,
        )
    return b.instantiate()


@pytest.mark.parametrize(
    "specs",
    [
        [("a", 1, 4), ("b", 2, 8)],
        [("a", 2, 4), ("b", 4, 8)],          # U = 1.0 harmonic
        [("a", 1, 2), ("b", 1, 4), ("c", 1, 8)],
    ],
)
def test_rm_schedule_matches_simulation(specs):
    instance = build(specs)
    tasks = extract_task_set(instance, instance.processors()[0])
    sim = simulate(tasks, policy="rate")
    assert sim.schedulable
    horizon = sim.horizon
    acsr = acsr_schedule(instance, horizon)
    expected = [
        name if name is None else f"Agree.{name.split('.')[-1]}"
        for name in sim.schedule
    ]
    assert acsr == expected[: len(acsr)]
    assert len(acsr) == horizon


def test_edf_schedule_busy_pattern_matches():
    """Under EDF ties make the exact runner nondeterministic, but the
    busy/idle pattern of any ACSR path matches the simulator's."""
    instance = build(
        [("a", 2, 4), ("b", 3, 6)],
        scheduling=SchedulingProtocol.EARLIEST_DEADLINE_FIRST,
    )
    tasks = extract_task_set(instance, instance.processors()[0])
    sim = simulate(tasks, policy="edf")
    assert sim.schedulable
    acsr = acsr_schedule(instance, sim.horizon)
    busy_acsr = [slot is not None for slot in acsr]
    busy_sim = [slot is not None for slot in sim.schedule]
    assert busy_acsr == busy_sim[: len(busy_acsr)]
