"""Tests for the analysis service: HTTP API, SSE, backpressure, crashes.

Most tests boot a real :class:`~repro.serve.ReproServer` on an
ephemeral port inside a background event-loop thread and talk to it
with ``http.client`` -- the same path ``curl`` takes.  The thread
executor keeps them fast; one test uses the process executor to pin
crash recovery (a thread cannot be SIGKILLed).
"""

import asyncio
import json
import os
import threading
import time
from contextlib import contextmanager
from http.client import HTTPConnection

import pytest

from repro.aadl.gallery import cruise_control_text
from repro.batch import AnalysisJob, VerdictCache, cache_key
from repro.errors import BackpressureError, ServeError
from repro.obs import parse_stream
from repro.obs.sse import format_event
from repro.serve import (
    EXIT_CODES,
    VERDICT_STATUS,
    AnalysisService,
    ReproServer,
    job_from_request,
)


@contextmanager
def live_server(**service_kwargs):
    """A running server on an ephemeral port, in a loop thread."""
    service = AnalysisService(**service_kwargs)
    server = ReproServer(service, host="127.0.0.1", port=0)
    started = threading.Event()
    holder = {}

    def run():
        async def main():
            await server.start()
            holder["addr"] = server.address
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            started.set()
            await holder["stop"].wait()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield holder["addr"], service
    finally:
        holder["loop"].call_soon_threadsafe(holder["stop"].set)
        thread.join(30)


def request(addr, method, path, body=None):
    """One request/response exchange; returns (status, decoded json)."""
    conn = HTTPConnection(*addr, timeout=60)
    encoded = json.dumps(body) if body is not None else None
    conn.request(method, path, body=encoded,
                 headers={"Content-Type": "application/json"})
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, json.loads(data)


def await_result(addr, request_id, timeout=60):
    deadline = time.monotonic() + timeout
    while True:
        status, body = request(addr, "GET", f"/v1/jobs/{request_id}/result")
        if status != 202:
            return status, body
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.05)


def submit(addr, source, job_id=None, **extra):
    body = {"source": source}
    if job_id:
        body["job_id"] = job_id
    body.update(extra)
    return request(addr, "POST", "/v1/analyze", body)


@pytest.fixture
def server(tmp_path):
    with live_server(
        cache=VerdictCache(str(tmp_path / "cache")),
        workers=2,
        backlog=4,
        executor="thread",
        artifacts_dir=str(tmp_path / "serve"),
    ) as (addr, service):
        yield addr, service


class TestContracts:
    def test_verdict_status_mirrors_exit_codes(self):
        # every verdict has both an exit code and an HTTP status
        assert set(VERDICT_STATUS) == set(EXIT_CODES)
        assert VERDICT_STATUS["schedulable"] == 200
        assert VERDICT_STATUS["unschedulable"] == 422
        assert VERDICT_STATUS["error"] == 400
        assert VERDICT_STATUS["unknown"] == 503
        assert EXIT_CODES == {
            "schedulable": 0, "unschedulable": 1, "error": 2, "unknown": 3,
        }

    def test_sse_round_trip(self):
        blob = format_event("span", {"name": "serve.job", "elapsed": 0.5})
        blob += format_event("result", {"verdict": "schedulable"})
        events = parse_stream(blob.decode())
        assert [e for e, _ in events] == ["span", "result"]
        assert events[0][1]["name"] == "serve.job"

    def test_sse_event_name_rejects_newlines(self):
        with pytest.raises(ValueError):
            format_event("bad\nname", {})

    def test_job_from_request_shapes(self):
        job = job_from_request({"source": cruise_control_text()})
        assert job.kind == "aadl"
        replay = job_from_request({"job": job.to_dict()})
        assert cache_key(replay) == cache_key(job)
        portfolio = job_from_request(
            {"source": cruise_control_text(), "portfolio": True}
        )
        assert portfolio.kind == "portfolio"

    @pytest.mark.parametrize("body", [
        [],  # not an object
        {},  # no source
        {"source": ""},  # empty source
        {"source": 7},  # mistyped source
        {"source": "x", "options": {"bogus": 1}},  # unknown option
        {"source": "x", "options": {"max_states": -5}},  # bad budget
        {"source": "x", "root": 3},  # mistyped root
        {"job": "nope"},  # mistyped replay
    ])
    def test_job_from_request_rejects(self, body):
        with pytest.raises(ServeError):
            job_from_request(body)

    def test_service_config_validation(self):
        with pytest.raises(ServeError):
            AnalysisService(executor="rocket")
        with pytest.raises(ServeError):
            AnalysisService(workers=0)
        with pytest.raises(ServeError):
            AnalysisService(backlog=0)


class TestEndpoints:
    def test_healthz(self, server):
        addr, _ = server
        assert request(addr, "GET", "/healthz") == (200, {"status": "ok"})

    def test_schedulable_maps_to_200_exit_0(self, server):
        addr, _ = server
        status, body = submit(addr, cruise_control_text(), job_id="cc")
        assert status == 202
        assert body["disposition"] == "queued"
        status, body = await_result(addr, body["request_id"])
        assert status == 200
        assert body["exit_code"] == 0
        assert body["result"]["verdict"] == "schedulable"

    def test_unschedulable_maps_to_422_exit_1(self, server):
        addr, _ = server
        _, body = submit(addr, cruise_control_text(overloaded=True))
        status, body = await_result(addr, body["request_id"])
        assert status == 422
        assert body["exit_code"] == 1

    def test_malformed_model_maps_to_400_exit_2(self, server):
        addr, _ = server
        status, body = submit(addr, "this is not AADL")
        # unkeyable models complete synchronously, off-queue
        assert status == 200
        assert body["disposition"] == "invalid"
        status, body = await_result(addr, body["request_id"])
        assert status == 400
        assert body["exit_code"] == 2
        assert body["result"]["error"]

    def test_unknown_maps_to_503_exit_3(self, server):
        addr, _ = server
        _, body = submit(
            addr, cruise_control_text(), options={"max_states": 5}
        )
        status, body = await_result(addr, body["request_id"])
        assert status == 503
        assert body["exit_code"] == 3
        assert body["result"]["verdict"] == "unknown"

    def test_bad_json_body_is_400(self, server):
        addr, _ = server
        conn = HTTPConnection(*addr, timeout=60)
        conn.request("POST", "/v1/analyze", body="{not json")
        resp = conn.getresponse()
        assert resp.status == 400
        conn.close()

    def test_unknown_routes_and_methods(self, server):
        addr, _ = server
        assert request(addr, "GET", "/nope")[0] == 404
        assert request(addr, "GET", "/v1/jobs/r999999")[0] == 404
        assert request(addr, "GET", "/v1/jobs/r999999/result")[0] == 404
        assert request(addr, "GET", "/v1/analyze")[0] == 405
        assert request(addr, "POST", "/healthz")[0] == 405

    def test_status_summary(self, server):
        addr, _ = server
        _, body = submit(addr, cruise_control_text(), job_id="cc")
        rid = body["request_id"]
        await_result(addr, rid)
        status, body = request(addr, "GET", f"/v1/jobs/{rid}")
        assert status == 200
        assert body["state"] == "done"
        assert body["job_id"] == "cc"
        assert body["verdict"] == "schedulable"
        assert body["exit_code"] == 0

    def test_stats_endpoint(self, server):
        addr, _ = server
        _, body = submit(addr, cruise_control_text())
        await_result(addr, body["request_id"])
        status, stats = request(addr, "GET", "/v1/stats")
        assert status == 200
        assert stats["counters"]["submitted"] == 1
        assert stats["counters"]["completed"] == 1
        assert stats["cache"]["misses"] >= 1
        assert stats["executor"] == "thread"


class TestCacheAndCoalescing:
    def test_resubmission_hits_the_cache(self, server):
        addr, service = server
        _, body = submit(addr, cruise_control_text(), job_id="first")
        await_result(addr, body["request_id"])
        status, body = submit(addr, cruise_control_text(), job_id="second")
        # a cache hit answers inline: 200 with the verdict, no queueing
        assert status == 200
        assert body["disposition"] == "cached"
        assert body["verdict"] == "schedulable"
        status, body = await_result(addr, body["request_id"])
        assert body["result"]["cached"] is True
        assert service.cache.hits == 1

    def test_identical_inflight_requests_coalesce(self, server, tmp_path):
        addr, service = server
        unblock = str(tmp_path / "unblock")
        try:
            opts = {"batch_fault": f"block:{unblock}"}
            _, first = submit(addr, cruise_control_text(), options=opts)
            _, second = submit(addr, cruise_control_text(), options=opts)
            assert second["disposition"] == "coalesced"
            # both callers share one record, hence one proof
            assert second["request_id"] == first["request_id"]
            assert service.counters["coalesced"] == 1
        finally:
            open(unblock, "w").close()
        status, body = await_result(addr, first["request_id"])
        assert status == 200

    def test_distinct_options_do_not_coalesce(self, server, tmp_path):
        addr, _ = server
        unblock = str(tmp_path / "unblock")
        try:
            _, first = submit(
                addr, cruise_control_text(),
                options={"batch_fault": f"block:{unblock}",
                         "max_states": 10_000},
            )
            _, second = submit(
                addr, cruise_control_text(),
                options={"batch_fault": f"block:{unblock}",
                         "max_states": 20_000},
            )
            assert second["disposition"] == "queued"
            assert second["request_id"] != first["request_id"]
        finally:
            open(unblock, "w").close()
        await_result(addr, first["request_id"])
        await_result(addr, second["request_id"])


class TestBackpressure:
    def test_full_queue_answers_429(self, tmp_path):
        unblock = str(tmp_path / "unblock")
        with live_server(
            cache=None, workers=1, backlog=1,
            executor="thread", artifacts_dir=None,
        ) as (addr, service):
            try:
                accepted = []
                rejected = 0
                for i in range(6):
                    status, body = submit(
                        addr, cruise_control_text(),
                        options={"batch_fault": f"block:{unblock}",
                                 "max_states": 1_000 + i},  # distinct keys
                    )
                    if status == 202:
                        accepted.append(body["request_id"])
                    else:
                        assert status == 429
                        assert "retry" in body["error"].lower()
                        rejected += 1
                # 1 running + 1 queued fit; everything else sheds
                assert len(accepted) == 2
                assert rejected == 4
                assert service.counters["rejected"] == 4
            finally:
                open(unblock, "w").close()
            for rid in accepted:
                status, _ = await_result(addr, rid)
                assert status == 200


class TestEventStream:
    def test_replay_covers_lifecycle_and_spans(self, server):
        addr, _ = server
        _, body = submit(addr, cruise_control_text())
        rid = body["request_id"]
        await_result(addr, rid)
        conn = HTTPConnection(*addr, timeout=60)
        conn.request("GET", f"/v1/jobs/{rid}/events")
        resp = conn.getresponse()
        assert resp.getheader("Content-Type") == "text/event-stream"
        events = parse_stream(resp.read().decode())
        conn.close()
        kinds = [event for event, _ in events]
        assert kinds[0] == "queued"
        assert "running" in kinds
        assert kinds[-1] == "result"
        span_names = {d["name"] for e, d in events if e == "span"}
        # the worker's serve.job span plus the pipeline stages it wraps
        assert "serve.job" in span_names
        assert {"aadl.parse", "translate", "engine.explore"} <= span_names
        final = events[-1][1]
        assert final["verdict"] == "schedulable"
        assert final["exit_code"] == 0
        assert all(d["request_id"] == rid for _, d in events)

    def test_live_stream_terminates_on_result(self, server, tmp_path):
        addr, _ = server
        unblock = str(tmp_path / "unblock")
        try:
            _, body = submit(
                addr, cruise_control_text(),
                options={"batch_fault": f"block:{unblock}"},
            )
            rid = body["request_id"]
            conn = HTTPConnection(*addr, timeout=60)
            conn.request("GET", f"/v1/jobs/{rid}/events")
            resp = conn.getresponse()
        finally:
            open(unblock, "w").close()
        # read() blocks until the server closes after the result event
        events = parse_stream(resp.read().decode())
        conn.close()
        assert events[-1][0] == "result"


class TestBundles:
    def test_bundle_replays_through_batch(self, server, tmp_path):
        addr, service = server
        _, body = submit(addr, cruise_control_text(), job_id="cc")
        rid = body["request_id"]
        await_result(addr, rid)
        status, bundle = request(addr, "GET", f"/v1/jobs/{rid}/bundle")
        assert status == 200
        assert bundle["request_id"] == rid
        assert bundle["result"]["verdict"] == "schedulable"
        # the on-disk bundle is a valid batch input
        path = service.get(rid).bundle_path
        assert path and os.path.exists(path)
        replayed = AnalysisJob.from_file(path)
        assert cache_key(replayed) == bundle["cache_key"]

    def test_bundle_404_when_disabled(self, tmp_path):
        with live_server(
            cache=None, workers=1, backlog=4,
            executor="thread", artifacts_dir=None,
        ) as (addr, _):
            _, body = submit(addr, cruise_control_text())
            rid = body["request_id"]
            await_result(addr, rid)
            status, _ = request(addr, "GET", f"/v1/jobs/{rid}/bundle")
            assert status == 404


class TestCrashRecovery:
    """Process-mode only: a SIGKILLed worker must not take the service
    down, and the killed job must report the worker-death verdict."""

    def test_sigkill_yields_error_and_service_survives(self, tmp_path):
        with live_server(
            cache=None, workers=1, backlog=8,
            executor="process", artifacts_dir=None, trace=False,
        ) as (addr, service):
            _, body = submit(
                addr, cruise_control_text(), job_id="killer",
                options={"batch_fault": "sigkill"},
            )
            status, body = await_result(addr, body["request_id"], timeout=120)
            assert status == 400
            assert body["exit_code"] == 2
            assert "worker process died" in body["result"]["error"]
            assert service.counters["worker_crashes"] >= 1
            # the rebuilt pool still proves real models
            _, body = submit(addr, cruise_control_text(), job_id="after")
            status, body = await_result(addr, body["request_id"], timeout=120)
            assert status == 200
            assert body["result"]["verdict"] == "schedulable"


class TestServiceDirect:
    """Unit-level checks that need no socket."""

    def test_submit_requires_start(self):
        service = AnalysisService(cache=None, artifacts_dir=None)
        with pytest.raises(ServeError):
            service.submit(AnalysisJob.from_aadl(cruise_control_text()))

    def test_backpressure_error_is_serve_error(self):
        assert issubclass(BackpressureError, ServeError)

    def test_cli_parser_wires_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--executor", "thread",
             "--workers", "3", "--backlog", "9", "--no-cache"]
        )
        assert args.func.__name__ == "cmd_serve"
        assert args.workers == 3
        assert args.backlog == 9
        assert args.no_cache is True
