"""Tests of the baseline-comparison report."""

import pytest

from repro.aadl.gallery import (
    shared_bus_pair,
    sporadic_consumer,
    two_periodic_threads,
)
from repro.aadl.properties import SchedulingProtocol
from repro.analysis import compare_with_baselines


class TestComparison:
    def test_all_methods_agree_schedulable(self):
        rows = compare_with_baselines(two_periodic_threads(schedulable=True))
        methods = {row.method: row.verdict for row in rows}
        assert methods["acsr-exploration"] is True
        assert methods["response-time-analysis"] is True
        assert methods["cheddar-style-sim"] is True
        assert methods["utilization-LL"] is True

    def test_all_methods_agree_unschedulable(self):
        rows = compare_with_baselines(
            two_periodic_threads(schedulable=False)
        )
        methods = {row.method: row.verdict for row in rows}
        assert methods["acsr-exploration"] is False
        assert methods["response-time-analysis"] is False
        assert methods["cheddar-style-sim"] is False

    def test_edf_uses_demand_analysis(self):
        rows = compare_with_baselines(
            two_periodic_threads(
                scheduling=SchedulingProtocol.EARLIEST_DEADLINE_FIRST
            )
        )
        methods = {row.method: row.verdict for row in rows}
        assert methods["edf-demand-analysis"] is True
        assert "response-time-analysis" not in methods

    def test_multiprocessor_classical_na(self):
        rows = compare_with_baselines(shared_bus_pair())
        methods = {row.method: row.verdict for row in rows}
        assert methods["acsr-exploration"] is True
        assert methods["classical-tests"] is None

    def test_event_driven_classical_na(self):
        """Sporadic/aperiodic interaction patterns: only the exhaustive
        analysis applies -- the paper's core selling point."""
        rows = compare_with_baselines(sporadic_consumer())
        methods = {row.method: row.verdict for row in rows}
        assert methods["acsr-exploration"] is True

    def test_rows_render(self):
        rows = compare_with_baselines(two_periodic_threads())
        for row in rows:
            text = repr(row)
            assert row.method in text
            assert "ms" in text
