"""Tests of the resource-hiding operator ``hide(P, {r})``."""

import pytest

from repro.errors import AcsrSemanticsError
from repro.acsr import (
    ProcessEnv,
    action,
    format_term,
    hide,
    nil,
    parallel,
    parse_term,
    proc,
    send,
    transitions,
)
from repro.acsr.resources import Action
from repro.acsr.terms import Hide


class TestSemantics:
    def test_hidden_resource_removed_from_actions(self, env):
        env.define("P", (), action({"cpu": 1, "bus": 2}) >> proc("P"))
        term = hide(proc("P"), ["bus"])
        ((label, succ),) = transitions(term, env)
        assert label is Action([("cpu", 1)])
        assert isinstance(succ, Hide)

    def test_hidden_resource_no_longer_conflicts(self, env):
        env.define("P", (), action({"bus": 2}) >> proc("P"))
        composed = parallel(
            hide(proc("P"), ["bus"]),
            action({"bus": 1}) >> nil(),
        )
        actions = [
            label
            for label, _ in transitions(composed, env)
            if isinstance(label, Action)
        ]
        # Both use 'bus' but one side's use is internal: they co-occur.
        assert actions == [Action([("bus", 1)])]

    def test_unhidden_conflict_still_blocks(self, env):
        env.define("P", (), action({"bus": 2}) >> proc("P"))
        composed = parallel(proc("P"), action({"bus": 1}) >> nil())
        actions = [
            label
            for label, _ in transitions(composed, env)
            if isinstance(label, Action)
        ]
        assert actions == []

    def test_events_pass_through(self, env):
        env.define("P", (), send("e", 1) >> proc("P"))
        term = hide(proc("P"), ["bus"])
        ((label, _),) = transitions(term, env)
        assert label.name == "e"

    def test_hiding_everything_yields_idle(self, env):
        env.define("P", (), action({"cpu": 1}) >> proc("P"))
        term = hide(proc("P"), ["cpu"])
        ((label, _),) = transitions(term, env)
        assert label.is_idle


class TestConstruction:
    def test_empty_set_is_noop(self):
        assert hide(proc("P"), []) is proc("P")

    def test_nested_hides_merge(self):
        merged = hide(hide(proc("P"), ["a"]), ["b"])
        assert isinstance(merged, Hide)
        assert merged.resources == frozenset({"a", "b"})

    def test_invalid_resource_rejected(self):
        with pytest.raises(AcsrSemanticsError):
            Hide(proc("P"), frozenset({""}))

    def test_roundtrip(self):
        term = hide(proc("P"), ["bus", "mem"])
        assert parse_term(format_term(term)) is term
