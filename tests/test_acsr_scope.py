"""Tests of temporal scopes: exception, timeout and interrupt exits
(paper S3 and the Figure 3 composition)."""

import pytest

from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    scope,
    send,
    transitions,
)
from repro.acsr.events import EventLabel
from repro.acsr.resources import Action


class TestTimeout:
    def test_timeout_after_bound_steps(self, env):
        env.define("Body", (), idle() >> proc("Body"))
        env.define("Handler", (), send("timeout_hit", 1) >> nil())
        term = scope(proc("Body"), bound=2, timeout=proc("Handler"))
        # two idle steps consume the bound...
        ((_, s1),) = transitions(term, env)
        ((_, s2),) = transitions(s1, env)
        # ...after which the scope IS the handler.
        assert s2 is proc("Handler")

    def test_timeout_with_nil_handler_deadlocks(self, env):
        env.define("Body", (), idle() >> proc("Body"))
        term = scope(proc("Body"), bound=1)
        ((_, succ),) = transitions(term, env)
        assert transitions(succ, env) == ()

    def test_events_do_not_consume_bound(self, env):
        env.define(
            "Body", (), send("ping", 1) >> (idle() >> proc("Body"))
        )
        term = scope(proc("Body"), bound=1, timeout=proc("Body"))
        ((label, succ),) = transitions(term, env)
        assert isinstance(label, EventLabel)
        # Still inside the scope with the full bound.
        assert succ.bound == 1

    def test_infinite_bound_never_times_out(self, env):
        env.define("Body", (), idle() >> proc("Body"))
        term = scope(proc("Body"), bound=None)
        state = term
        for _ in range(5):
            ((_, state),) = transitions(state, env)
        assert state.bound is None


class TestException:
    def test_exception_exits_to_success(self, env):
        env.define("Body", (), send("fin", 1) >> proc("Body"))
        env.define("Next", (), idle() >> proc("Next"))
        term = scope(
            proc("Body"), bound=5, exception="fin", success=proc("Next")
        )
        ((label, succ),) = transitions(term, env)
        assert label.name == "fin" and label.is_output
        assert succ is proc("Next")

    def test_exception_event_is_observable_outside(self, env):
        """The exception exit synchronizes with the environment."""
        env.define("Body", (), send("fin", 1) >> proc("Body"))
        env.define("Obs", (), recv("fin", 1) >> proc("ObsDone"))
        env.define("ObsDone", (), idle() >> proc("ObsDone"))
        env.define("Next", (), idle() >> proc("Next"))
        scoped = scope(
            proc("Body"), bound=5, exception="fin", success=proc("Next")
        )
        system = restrict(parallel(scoped, proc("Obs")), ["fin"])
        steps = transitions(system, env)
        assert len(steps) == 1
        assert steps[0][0].is_tau and steps[0][0].via == "fin"

    def test_input_of_exception_name_does_not_exit(self, env):
        env.define("Body", (), recv("fin", 1) >> proc("Body"))
        term = scope(
            proc("Body"), bound=5, exception="fin", success=nil()
        )
        ((label, succ),) = transitions(term, env)
        assert label.is_input
        assert succ is not nil()  # still inside the scope

    def test_other_events_stay_in_scope(self, env):
        env.define("Body", (), send("other", 1) >> proc("Body"))
        term = scope(
            proc("Body"), bound=5, exception="fin", success=nil()
        )
        ((label, succ),) = transitions(term, env)
        assert label.name == "other"
        assert succ.exception == "fin"


class TestInterrupt:
    def test_interrupt_steps_offered(self, env):
        env.define("Body", (), idle() >> proc("Body"))
        env.define("Handler", (), recv("irq", 1) >> proc("Handled"))
        env.define("Handled", (), idle() >> proc("Handled"))
        term = scope(proc("Body"), bound=5, interrupt=proc("Handler"))
        labels = {str(label) for label, _ in transitions(term, env)}
        assert "(irq?,1)" in labels
        assert "idle" in labels

    def test_interrupt_abandons_scope(self, env):
        env.define("Body", (), idle() >> proc("Body"))
        env.define("Handler", (), recv("irq", 1) >> proc("Handled"))
        env.define("Handled", (), idle() >> proc("Handled"))
        term = scope(proc("Body"), bound=5, interrupt=proc("Handler"))
        irq_steps = [
            succ
            for label, succ in transitions(term, env)
            if isinstance(label, EventLabel)
        ]
        assert irq_steps == [proc("Handled")]


class TestFigure3:
    """The paper's Figure 3: a driver that preempts Simple on the bus,
    then either interrupts it or starves it into an exception."""

    @pytest.fixture
    def figure3(self, env):
        # Simple (Figure 2b): the first compute step, or -- when starved
        # off the cpu -- an idling step that gives up via the exception.
        env.define(
            "Simple",
            (),
            choice(
                action({"cpu": 1}) >> proc("Step2"),
                idle() >> (send("exc", 1) >> proc("Simple")),
            ),
        )
        env.define(
            "Step2",
            (),
            choice(
                action({"cpu": 1, "bus": 1})
                >> (send("done", 1) >> proc("Simple")),
                idle() >> proc("Step2"),
            ),
        )
        env.define("ExcHandler", (), idle() >> proc("ExcHandler"))
        env.define("IntHandler", (), idle() >> proc("IntHandler"))
        # Driver (Figure 3): bus step disjoint from Simple's first action;
        # bus step that preempts Simple's second action; an idle step that
        # lets Simple finish the first iteration; then two alternative
        # behaviours -- raise the interrupt, or grab the cpu at priority 2
        # and starve Simple at its initial state into the exception.
        env.define(
            "Driver",
            (),
            action({"bus": 2})
            >> action({"bus": 2})
            >> idle().then(
                choice(
                    send("interrupt", 0) >> proc("DriverIdle"),
                    action({"cpu": 2}) >> proc("Starver"),
                )
            ),
        )
        env.define("Starver", (), action({"cpu": 2}) >> proc("Starver"))
        env.define("DriverIdle", (), idle() >> proc("DriverIdle"))

        scoped = scope(
            proc("Simple"),
            bound=None,
            exception="exc",
            success=proc("ExcHandler"),
            interrupt=recv("interrupt", 0) >> proc("IntHandler"),
        )
        root = restrict(parallel(scoped, proc("Driver")), ["interrupt"])
        return env.close(root)

    def test_driver_preempts_simple_on_bus(self, figure3):
        # Step 1: Simple computes on cpu while driver uses the bus.
        steps = figure3.prioritized_steps()
        actions = [l for l, _ in steps if isinstance(l, Action)]
        assert Action([("cpu", 1), ("bus", 2)]) in actions

    def test_interrupt_reachable(self, figure3):
        from repro.versa import find_reachable
        from repro.versa.queries import contains_proc

        trace = find_reachable(figure3, contains_proc("IntHandler"))
        assert trace is not None

    def test_exception_reachable(self, figure3):
        from repro.versa import find_reachable
        from repro.versa.queries import contains_proc

        trace = find_reachable(figure3, contains_proc("ExcHandler"))
        assert trace is not None

    def test_second_iteration_blocked_on_bus(self, figure3):
        """While the driver holds the bus at priority 2, Simple cannot
        take its cpu+bus step."""
        state = figure3.root
        # advance one timed step
        timed = [
            (l, s)
            for l, s in figure3.prioritized_steps(state)
            if isinstance(l, Action) and "cpu" in l
        ]
        _, state = timed[0]
        labels = [l for l, _ in figure3.prioritized_steps(state)]
        # Simple wants {(cpu,1),(bus,1)}; the driver's (bus,2) claim
        # excludes that combination -- every timed step has the bus at
        # priority 2 and the cpu unused (Simple preempted for one step).
        for label in labels:
            if isinstance(label, Action):
                assert label.priority_of("bus") == 2
                assert "cpu" not in label
