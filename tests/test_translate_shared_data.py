"""Tests of shared-data access: resources, blocking, inversion, ceiling.

Paper S4: access connections are omitted from the presentation but S5
notes that the "priority-inheritance protocol" family has ACSR encodings;
S4.1 fixes the granularity: "access to shared data is modeled as taking
the whole quantum, since only one thread can gain access to it during
the quantum."
"""

import pytest

from repro.errors import TranslationError
from repro.aadl import parse_model, instantiate
from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import priority_inversion_trio
from repro.aadl.properties import (
    DispatchProtocol,
    SchedulingProtocol,
    ms,
)
from repro.analysis import Verdict, analyze_model
from repro.translate import TranslationOptions, translate
from repro.translate.priorities import CeilingPriority


class TestAccessConnectionResolution:
    SRC = """
    processor CPU
      properties
        Scheduling_Protocol => RMS;
    end CPU;
    data State end State;
    thread Writer
      features
        st: requires data access State;
      properties
        Dispatch_Protocol => Periodic;
        Period => 8 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Compute_Deadline => 8 ms;
    end Writer;
    system S end S;
    system implementation S.impl
      subcomponents
        w1: thread Writer;
        w2: thread Writer;
        shared: data State;
        cpu: processor CPU;
      connections
        a1: data access shared -> w1.st;
        a2: data access w2.st -> shared;
      properties
        Actual_Processor_Binding => reference(cpu) applies to w1;
        Actual_Processor_Binding => reference(cpu) applies to w2;
    end S.impl;
    """

    def test_access_connections_resolved_both_directions(self):
        inst = instantiate(parse_model(self.SRC), "S.impl")
        assert len(inst.access_connections) == 2
        targets = {a.target.qualified_name for a in inst.access_connections}
        assert targets == {"S.shared"}

    def test_shared_data_of(self):
        inst = instantiate(parse_model(self.SRC), "S.impl")
        w1 = inst.child("w1")
        assert [d.qualified_name for d in inst.shared_data_of(w1)] == [
            "S.shared"
        ]

    def test_translated_resource_names_the_data_component(self):
        inst = instantiate(parse_model(self.SRC), "S.impl")
        result = translate(inst)
        data_resources = result.names.names_of_kind("data")
        assert list(data_resources.values()) == ["S.shared"]

    def test_classifier_fallback_without_connection(self):
        src = self.SRC.replace(
            "a1: data access shared -> w1.st;\n        "
            "a2: data access w2.st -> shared;",
            "a1: data access shared -> w1.st;",
        )
        inst = instantiate(parse_model(src), "S.impl")
        result = translate(inst)
        data_resources = set(result.names.names_of_kind("data").values())
        # w1 resolved to the component; w2 falls back to the classifier.
        assert data_resources == {"S.shared", "State"}


class TestQuantumSerialization:
    def build_pair(self, same_classifier: bool):
        b = SystemBuilder("Pair")
        cpu1 = b.processor("cpu1")
        cpu2 = b.processor("cpu2")
        t1 = b.thread(
            "t1", dispatch=DispatchProtocol.PERIODIC, period=ms(4),
            compute_time=(ms(2), ms(2)), deadline=ms(4), processor=cpu1,
        )
        t1.requires_data_access("d", classifier="Shared")
        t2 = b.thread(
            "t2", dispatch=DispatchProtocol.PERIODIC, period=ms(4),
            compute_time=(ms(2), ms(2)), deadline=ms(4), processor=cpu2,
        )
        t2.requires_data_access(
            "d", classifier="Shared" if same_classifier else "Other"
        )
        return b.instantiate()

    def test_sharers_never_compute_simultaneously(self):
        from repro.acsr.resources import Action
        from repro.versa import Explorer

        result = translate(self.build_pair(same_classifier=True))
        exploration = Explorer(
            result.system, store_transitions=True, max_states=100_000
        ).run()
        assert exploration.completed
        for state in exploration.states():
            for label, _ in exploration.transitions_of(state):
                if isinstance(label, Action):
                    # Never both cpus in one quantum: the shared data
                    # serializes them (S4.1 whole-quantum access).
                    assert not (
                        "cpu$Pair_cpu1" in label and "cpu$Pair_cpu2" in label
                    )

    def test_independent_threads_do_compute_simultaneously(self):
        from repro.acsr.resources import Action
        from repro.versa import Explorer

        result = translate(self.build_pair(same_classifier=False))
        exploration = Explorer(
            result.system, store_transitions=True, max_states=100_000
        ).run()
        parallel_steps = [
            label
            for state in exploration.states()
            for label, _ in exploration.transitions_of(state)
            if isinstance(label, Action)
            and "cpu$Pair_cpu1" in label
            and "cpu$Pair_cpu2" in label
        ]
        assert parallel_steps

    def test_serialized_sharers_still_schedulable_when_feasible(self):
        result = analyze_model(self.build_pair(same_classifier=True))
        # 2+2 quanta of serialized work per 4-quantum period: exactly
        # feasible.
        assert result.verdict is Verdict.SCHEDULABLE


class TestPriorityInversion:
    def test_inversion_misses_deadline_without_ceiling(self):
        result = analyze_model(priority_inversion_trio())
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert result.scenario.misses == ["Inversion.high"]

    def test_ceiling_restores_schedulability(self):
        result = analyze_model(
            priority_inversion_trio(),
            options=TranslationOptions(use_priority_ceiling=True),
        )
        assert result.verdict is Verdict.SCHEDULABLE

    def test_ceiling_priority_assigned_to_sharers_only(self):
        result = translate(
            priority_inversion_trio(),
            TranslationOptions(use_priority_ceiling=True),
        )
        priorities = {
            qual.split(".")[-1]: t.priority
            for qual, t in result.threads.items()
        }
        assert isinstance(priorities["low"], CeilingPriority)
        assert priorities["low"].ceiling == 3
        # High already sits at the ceiling; medium shares nothing.
        assert not isinstance(priorities["medium"], CeilingPriority)

    def test_ceiling_requires_fixed_priorities(self):
        b = SystemBuilder("Dyn")
        cpu = b.processor(
            "cpu", scheduling=SchedulingProtocol.EARLIEST_DEADLINE_FIRST
        )
        t1 = b.thread(
            "t1", dispatch=DispatchProtocol.PERIODIC, period=ms(4),
            compute_time=(ms(1), ms(1)), deadline=ms(4), processor=cpu,
        )
        t1.requires_data_access("d", classifier="Shared")
        t2 = b.thread(
            "t2", dispatch=DispatchProtocol.PERIODIC, period=ms(8),
            compute_time=(ms(1), ms(1)), deadline=ms(8), processor=cpu,
        )
        t2.requires_data_access("d", classifier="Shared")
        with pytest.raises(TranslationError):
            translate(
                b.instantiate(),
                TranslationOptions(use_priority_ceiling=True),
            )

    def test_base_priority_wins_initial_contention(self):
        """ICPP shape: at simultaneous release nobody holds the resource
        yet, so the high-priority sharer runs first even with the ceiling
        option on."""
        from repro.acsr.resources import Action
        from repro.versa import Explorer

        result = translate(
            priority_inversion_trio(),
            TranslationOptions(use_priority_ceiling=True),
        )
        exploration = Explorer(result.system, max_states=1).run  # noqa: unused
        system = result.system
        state = system.root
        # Drain the initial dispatch handshakes.
        while True:
            steps = system.prioritized_steps(state)
            event_steps = [
                (l, s) for l, s in steps if not isinstance(l, Action)
            ]
            if not event_steps:
                break
            state = event_steps[0][1]
        timed = [l for l, _ in system.prioritized_steps(state)]
        assert len(timed) == 1
        assert timed[0].priority_of("cpu$Inversion_cpu") == 3