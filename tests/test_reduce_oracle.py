"""The reduced ≡ unreduced oracle relation and its CLI command."""

import pytest

from repro.analysis import Verdict
from repro.cli import main
from repro.oracle import (
    AgreementStatus,
    evaluate_reduce_case,
    run_reduce_campaign,
)
from repro.oracle.reduce import classify_reduction_agreement


class TestAgreementRelation:
    def test_equal_decided_verdicts_agree(self):
        assert (
            classify_reduction_agreement(
                Verdict.SCHEDULABLE, Verdict.SCHEDULABLE
            )
            is AgreementStatus.AGREED
        )
        assert (
            classify_reduction_agreement(
                Verdict.UNSCHEDULABLE, Verdict.UNSCHEDULABLE
            )
            is AgreementStatus.AGREED
        )

    def test_decided_mismatch_disagrees(self):
        assert (
            classify_reduction_agreement(
                Verdict.SCHEDULABLE, Verdict.UNSCHEDULABLE
            )
            is AgreementStatus.DISAGREED
        )

    def test_unknown_is_not_a_disagreement(self):
        """Reduction changes which prefix a truncated run covers, so a
        budget-bound UNKNOWN on either side is never unsoundness."""
        assert (
            classify_reduction_agreement(
                Verdict.UNKNOWN, Verdict.SCHEDULABLE
            )
            is AgreementStatus.UNKNOWN
        )
        assert (
            classify_reduction_agreement(
                Verdict.UNSCHEDULABLE, Verdict.UNKNOWN
            )
            is AgreementStatus.UNKNOWN
        )


class TestReduceCampaign:
    def test_case_is_seed_reproducible(self):
        first = evaluate_reduce_case(11)
        second = evaluate_reduce_case(11)
        assert first.status is second.status
        assert first.unreduced_verdict is second.unreduced_verdict
        assert first.reduced_states == second.reduced_states
        assert first.jittered == second.jittered

    def test_small_campaign_agrees_and_reduces(self):
        report = run_reduce_campaign(seeds=8, base_seed=100)
        assert len(report.outcomes) == 8
        assert report.disagreements == []
        # The passes must actually fire somewhere in the campaign.
        assert report.orbits_merged > 0
        assert report.por_pruned > 0
        # The draw must include both symmetric and jittered systems.
        assert {o.jittered for o in report.outcomes} == {True, False}

    def test_overeager_fault_is_caught(self):
        """The oracle's self-test: an unsound symmetry pass (pairs
        replicas without verifying their definitions match) must
        disagree on some seed of the same small campaign."""
        report = run_reduce_campaign(
            seeds=8, base_seed=100, fault="overeager-sym"
        )
        assert report.disagreements, (
            "the reduction oracle failed to catch a deliberately "
            "unsound symmetry pass"
        )

    def test_report_format(self):
        report = run_reduce_campaign(seeds=4, base_seed=100)
        text = report.format()
        assert "reduce campaign [sym,por]: 4 case(s)" in text
        assert "disagreed: 0" in text
        assert "orbits_merged:" in text
        assert "por_pruned:" in text


class TestCli:
    def test_oracle_reduce_command(self, capsys):
        assert main(["oracle", "reduce", "--seeds", "4",
                     "--base-seed", "100"]) == 0
        out = capsys.readouterr().out
        assert "reduce campaign [sym,por]: 4 case(s)" in out
        assert "disagreed: 0" in out

    def test_oracle_reduce_fault_exits_nonzero(self, capsys):
        assert (
            main(
                [
                    "oracle", "reduce", "--seeds", "8",
                    "--base-seed", "100", "--fault", "overeager-sym",
                ]
            )
            == 1
        )
        assert "DISAGREED" in capsys.readouterr().out

    def test_unknown_fault_is_a_usage_error(self, capsys):
        assert (
            main(
                [
                    "oracle", "reduce", "--seeds", "1",
                    "--fault", "no-such-fault",
                ]
            )
            == 2
        )
        assert "unknown reduction fault" in capsys.readouterr().err
