"""Tests for LTS export, minimization, traces and queries."""

import pytest

from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    guard,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    send,
)
from repro.acsr.events import event_label, OUT
from repro.acsr.expressions import var
from repro.acsr.resources import Action
from repro.versa import (
    LTS,
    Explorer,
    Step,
    Trace,
    bisimulation_quotient,
    deadlock_free,
    find_deadlock,
    find_reachable,
    reachable_states,
)
from repro.versa.queries import contains_proc


@pytest.fixture
def explored():
    env = ProcessEnv()
    n = var("n")
    env.define(
        "Count",
        ("n",),
        guard(n < 3, action({"cpu": 1}) >> proc("Count", n + 1)),
    )
    system = env.close(proc("Count", 0))
    return Explorer(system, store_transitions=True).run()


class TestLts:
    def test_from_exploration(self, explored):
        lts = LTS.from_exploration(explored)
        assert lts.num_states == 4
        assert len(lts.edges) == 3
        assert lts.deadlock_states() == [3]

    def test_requires_stored_transitions(self):
        env = ProcessEnv()
        env.define("L", (), idle() >> proc("L"))
        result = Explorer(env.close(proc("L"))).run()
        with pytest.raises(ValueError):
            LTS.from_exploration(result)

    def test_networkx_export(self, explored):
        graph = LTS.from_exploration(explored).to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert graph.graph["initial"] == 0

    def test_labels(self, explored):
        lts = LTS.from_exploration(explored)
        assert lts.labels() == [Action([("cpu", 1)])]

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            LTS(2, 0, [(0, "a", 5)])


class TestMinimization:
    def test_chain_of_identical_states_collapses(self):
        """A cycle of identical idle states is bisimilar to one state."""
        env = ProcessEnv()
        env.define("A", (), idle() >> proc("B"))
        env.define("B", (), idle() >> proc("A"))
        result = Explorer(
            env.close(proc("A")), store_transitions=True
        ).run()
        lts = LTS.from_exploration(result)
        quotient, block_of = bisimulation_quotient(lts)
        assert quotient.num_states == 1
        assert block_of[0] == block_of[1]

    def test_distinct_behaviour_not_merged(self, explored):
        # Count(0)..Count(3) differ in distance-to-deadlock: no merging.
        lts = LTS.from_exploration(explored)
        quotient, _ = bisimulation_quotient(lts)
        assert quotient.num_states == 4

    def test_deadlock_freedom_invariant(self):
        env = ProcessEnv()
        env.define(
            "P",
            (),
            choice(
                action({"cpu": 1}) >> proc("P"),
                idle() >> proc("Q"),
            ),
        )
        env.define("Q", (), action({"cpu": 1}) >> proc("P"))
        result = Explorer(
            env.close(proc("P")), store_transitions=True
        ).run()
        lts = LTS.from_exploration(result)
        quotient, _ = bisimulation_quotient(lts)
        assert bool(lts.deadlock_states()) == bool(quotient.deadlock_states())

    def test_labels_distinguish(self):
        """States differing only in the label of their step stay apart."""
        lts = LTS(
            3,
            0,
            [
                (0, event_label("a", OUT, 1), 2),
                (1, event_label("b", OUT, 1), 2),
            ],
        )
        quotient, block_of = bisimulation_quotient(lts)
        assert block_of[0] != block_of[1]


class TestTraces:
    def test_duration_counts_timed_steps(self):
        t = Trace(
            nil(),
            [
                Step(event_label("e", OUT, 1), nil()),
                Step(Action([("cpu", 1)]), nil()),
                Step(Action(()), nil()),
            ],
        )
        assert t.duration == 2
        assert len(t) == 3

    def test_timed_prefix_times(self):
        t = Trace(
            nil(),
            [
                Step(Action([("cpu", 1)]), nil()),
                Step(event_label("e", OUT, 1), nil()),
                Step(Action([("cpu", 1)]), nil()),
            ],
        )
        assert t.timed_prefix_times() == [0, 1, 1]

    def test_format_contains_clock(self):
        t = Trace(nil(), [Step(Action([("cpu", 1)]), nil())])
        assert "t=0" in t.format()

    def test_empty_trace(self):
        t = Trace(nil(), [])
        assert t.final_state is nil()
        assert "<empty trace>" in t.format()


class TestQueries:
    def test_deadlock_free_true(self):
        env = ProcessEnv()
        env.define("L", (), idle() >> proc("L"))
        assert deadlock_free(env.close(proc("L")))

    def test_find_deadlock_none_when_free(self):
        env = ProcessEnv()
        env.define("L", (), idle() >> proc("L"))
        assert find_deadlock(env.close(proc("L"))) is None

    def test_find_deadlock_trace(self):
        env = ProcessEnv()
        env.define("D", (), action({"cpu": 1}) >> nil())
        trace = find_deadlock(env.close(proc("D")))
        assert trace is not None and len(trace) == 1

    def test_find_reachable(self):
        env = ProcessEnv()
        env.define("A", (), idle() >> proc("Target"))
        env.define("Target", (), idle() >> proc("Target"))
        trace = find_reachable(
            env.close(proc("A")), contains_proc("Target")
        )
        assert trace is not None and len(trace) == 1

    def test_find_reachable_none(self):
        env = ProcessEnv()
        env.define("A", (), idle() >> proc("A"))
        assert (
            find_reachable(env.close(proc("A")), contains_proc("Missing"))
            is None
        )

    def test_contains_proc_sees_parallel_components(self):
        env = ProcessEnv()
        env.define("X", (), idle() >> proc("X"))
        env.define("Y", (), idle() >> proc("Y"))
        predicate = contains_proc("Y")
        assert predicate(parallel(proc("X"), proc("Y")))
        assert not predicate(parallel(proc("X"), proc("X")))

    def test_reachable_states_full_result(self):
        env = ProcessEnv()
        n = var("n")
        env.define(
            "C", ("n",), guard(n < 2, idle() >> proc("C", n + 1))
        )
        result = reachable_states(env.close(proc("C", 0)))
        assert result.num_states == 3
        assert result.completed


class TestAdjacencyIndex:
    """``successors`` answers from a lazily built adjacency index
    instead of rescanning the whole edge list per query."""

    def test_successors_match_edges(self, explored):
        lts = LTS.from_exploration(explored)
        for state in range(lts.num_states):
            expected = [
                (label, dst)
                for src, label, dst in lts.edges
                if src == state
            ]
            assert lts.successors(state) == expected

    def test_index_built_once_and_reused(self, explored):
        lts = LTS.from_exploration(explored)
        assert lts._adjacency is None  # lazy: nothing until first query
        lts.successors(0)
        index = lts._adjacency
        assert index is not None
        lts.successors(1)
        lts.deadlock_states()
        assert lts._adjacency is index  # same object, not rebuilt

    def test_successors_returns_a_copy(self, explored):
        lts = LTS.from_exploration(explored)
        lts.successors(0).append(("tampered", 0))
        assert ("tampered", 0) not in lts.successors(0)

    def test_out_of_range_state_rejected(self, explored):
        lts = LTS.from_exploration(explored)
        with pytest.raises(ValueError):
            lts.successors(lts.num_states)
        with pytest.raises(ValueError):
            lts.successors(-1)

    def test_deadlock_states_use_index(self, explored):
        lts = LTS.from_exploration(explored)
        deadlocks = lts.deadlock_states()
        assert deadlocks == [
            state
            for state in range(lts.num_states)
            if not lts.successors(state)
        ]
