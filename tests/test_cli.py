"""Tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.aadl.gallery import cruise_control_text

MODAL = """
processor CPU
  properties
    Scheduling_Protocol => RMS;
end CPU;
thread T
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 8 ms;
end T;
system S end S;
system implementation S.impl
  subcomponents
    a: thread T;
    b: thread T in modes (busy);
  modes
    quiet: initial mode;
    busy: mode;
  properties
    Actual_Processor_Binding => reference(cpu) applies to a;
    Actual_Processor_Binding => reference(cpu) applies to b;
end S.impl;
"""


@pytest.fixture
def cc_file(tmp_path):
    path = tmp_path / "cc.aadl"
    path.write_text(cruise_control_text())
    return str(path)


@pytest.fixture
def cc_overloaded(tmp_path):
    path = tmp_path / "cc_over.aadl"
    path.write_text(cruise_control_text(overloaded=True))
    return str(path)


class TestAnalyze:
    def test_schedulable_exit_zero(self, cc_file, capsys):
        assert main(["analyze", cc_file]) == 0
        out = capsys.readouterr().out
        assert "verdict: schedulable" in out

    def test_unschedulable_exit_one(self, cc_overloaded, capsys):
        assert main(["analyze", cc_overloaded]) == 1
        out = capsys.readouterr().out
        assert "DEADLINE MISS" in out

    def test_explicit_root(self, cc_file, capsys):
        assert main(["analyze", cc_file, "--root", "CruiseControl.impl"]) == 0

    def test_baselines_flag(self, cc_file, capsys):
        assert main(["analyze", cc_file, "--baselines"]) == 0
        assert "acsr-exploration" in capsys.readouterr().out

    def test_quantum_flag(self, cc_file, capsys):
        # 5000 us = 5 ms quantum.
        assert main(["analyze", cc_file, "--quantum", "5000"]) == 0
        assert "quantum: 5000 us" in capsys.readouterr().out

    def test_all_modes(self, tmp_path, capsys):
        path = tmp_path / "modal.aadl"
        # Complete the modal model with a processor subcomponent.
        source = MODAL.replace(
            "b: thread T in modes (busy);",
            "b: thread T in modes (busy);\n    cpu: processor CPU;",
        )
        path.write_text(source)
        assert main(["analyze", str(path), "--all-modes"]) == 0
        out = capsys.readouterr().out
        assert "mode quiet" in out and "mode busy" in out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.aadl"]) == 2
        assert "error" in capsys.readouterr().err


class TestExitCodeContract:
    """0 schedulable, 1 unschedulable, 2 usage/model error, 3 unknown."""

    def test_schedulable_is_zero(self, cc_file):
        assert main(["analyze", cc_file]) == 0

    def test_unschedulable_is_one(self, cc_overloaded):
        assert main(["analyze", cc_overloaded]) == 1

    def test_unknown_is_three(self, cc_file, capsys):
        # A budget too small to decide truncates the exploration.
        assert main(["analyze", cc_file, "--max-states", "10"]) == 3
        assert "verdict: unknown" in capsys.readouterr().out

    def test_usage_error_is_two(self, capsys):
        assert main(["analyze", "/nonexistent.aadl"]) == 2

    def test_verdict_enum_carries_the_contract(self):
        from repro.analysis import Verdict

        assert Verdict.SCHEDULABLE.exit_code == 0
        assert Verdict.UNSCHEDULABLE.exit_code == 1
        assert Verdict.UNKNOWN.exit_code == 3

    def test_acsr_truncated_without_deadlock_is_three(
        self, cc_file, tmp_path, capsys
    ):
        out = tmp_path / "cc.acsr"
        assert main(["translate", cc_file, "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(
            ["acsr", str(out), "--full", "--max-states", "20"]
        ) == 3
        assert "verdict unknown" in capsys.readouterr().out

    def test_help_epilog_documents_the_contract(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit status" in out
        assert "3  verdict unknown" in out


class TestValidate:
    def test_valid_model(self, cc_file, capsys):
        assert main(["validate", cc_file]) == 0
        assert "satisfies" in capsys.readouterr().out

    def test_invalid_model(self, tmp_path, capsys):
        path = tmp_path / "bad.aadl"
        path.write_text(
            "thread T end T;\nsystem S end S;\n"
            "system implementation S.impl\n"
            "  subcomponents\n    t: thread T;\nend S.impl;"
        )
        assert main(["validate", str(path)]) == 1
        assert "violation" in capsys.readouterr().out


class TestTranslate:
    def test_emit_to_stdout(self, cc_file, capsys):
        assert main(["translate", cc_file]) == 0
        out = capsys.readouterr().out
        assert "process AD$" in out
        assert out.strip().endswith(";")

    def test_emitted_source_reparses_and_explores(self, cc_file, tmp_path, capsys):
        out_path = tmp_path / "cc.acsr"
        assert main(["translate", cc_file, "-o", str(out_path)]) == 0
        assert main(["acsr", str(out_path), "--full"]) == 0
        out = capsys.readouterr().out
        assert "no deadlock found" in out

    def test_root_inference_message(self, tmp_path, capsys):
        # Two unrelated root systems: inference must fail helpfully.
        path = tmp_path / "two.aadl"
        path.write_text(
            "system A end A;\nsystem implementation A.impl end A.impl;\n"
            "system B end B;\nsystem implementation B.impl end B.impl;\n"
        )
        assert main(["translate", str(path)]) == 2
        assert "candidate system implementations" in capsys.readouterr().err


class TestAcsr:
    def test_deadlocking_system(self, tmp_path, capsys):
        path = tmp_path / "dead.acsr"
        path.write_text(
            "process P = {(cpu,1)} : NIL;\nsystem P;\n"
        )
        assert main(["acsr", str(path)]) == 1
        out = capsys.readouterr().out
        assert "deadlock after 1 time units" in out

    def test_live_system(self, tmp_path, capsys):
        path = tmp_path / "live.acsr"
        path.write_text("process P = idle : P;\nsystem P;\n")
        assert main(["acsr", str(path), "--full"]) == 0
        assert "no deadlock" in capsys.readouterr().out

    def test_missing_system_decl(self, tmp_path, capsys):
        path = tmp_path / "nosys.acsr"
        path.write_text("process P = idle : P;\n")
        assert main(["acsr", str(path)]) == 2


class TestSimulate:
    def test_gantt_per_processor(self, cc_file, capsys):
        assert main(["simulate", cc_file]) == 0
        out = capsys.readouterr().out
        assert "hci_processor" in out and "ccl_processor" in out
        assert "|#" in out

    def test_edf_policy(self, cc_file, capsys):
        assert main(["simulate", cc_file, "--policy", "edf"]) == 0

    def test_miss_reported(self, cc_overloaded, capsys):
        assert main(["simulate", cc_overloaded]) == 1
        assert "MISS" in capsys.readouterr().out


class TestAcsrWalkAndDot:
    @pytest.fixture
    def acsr_file(self, cc_file, tmp_path):
        out = tmp_path / "cc.acsr"
        assert main(["translate", cc_file, "-o", str(out)]) == 0
        return str(out)

    def test_walk(self, acsr_file, capsys):
        assert main(["acsr", acsr_file, "--walk", "5", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "walk of 5 step(s)" in out

    def test_walk_hits_deadlock(self, tmp_path, capsys):
        path = tmp_path / "dead.acsr"
        path.write_text("process P = {(cpu,1)} : NIL;\nsystem P;\n")
        assert main(["acsr", str(path), "--walk", "10"]) == 1
        assert "deadlock" in capsys.readouterr().out

    def test_walk_deadlock_at_exactly_budget_steps(self, tmp_path, capsys):
        # Two steps then stuck, walked with --walk 2: the walk is
        # "full length" yet still ends in a deadlock.
        path = tmp_path / "edge.acsr"
        path.write_text(
            "process P = {(cpu,1)} : {(cpu,1)} : NIL;\nsystem P;\n"
        )
        assert main(["acsr", str(path), "--walk", "2"]) == 1
        out = capsys.readouterr().out
        assert "walk of 2 step(s)" in out
        assert "walk ended in a deadlock" in out

    def test_walk_truncated_live_system_is_clean(self, tmp_path, capsys):
        path = tmp_path / "live.acsr"
        path.write_text("process P = idle : P;\nsystem P;\n")
        assert main(["acsr", str(path), "--walk", "4"]) == 0
        assert "deadlock" not in capsys.readouterr().out

    def test_dot_export(self, acsr_file, tmp_path, capsys):
        dot = tmp_path / "out.dot"
        assert main(["acsr", acsr_file, "--dot", str(dot)]) == 0
        text = dot.read_text()
        assert text.startswith("digraph lts {")
        assert "doublecircle" in text


@pytest.fixture
def plant_file(tmp_path):
    from repro.aadl.gallery import fault_recovery_text

    path = tmp_path / "plant.aadl"
    path.write_text(fault_recovery_text())
    return str(path)


class TestModalCli:
    def test_modal_synchronous(self, plant_file, capsys):
        assert main(["analyze", plant_file, "--modal"]) == 0
        out = capsys.readouterr().out
        assert "modal analysis of Plant.impl" in out
        assert "protocol: synchronous" in out
        assert "nominal -[monitor.fault]-> error" in out
        assert "unreachable from the initial mode" in out

    def test_modal_asynchronous_stats(self, plant_file, capsys):
        assert (
            main(
                [
                    "analyze", plant_file, "--modal",
                    "--protocol", "asynchronous", "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "transition(s) checked" in out

    def test_modal_unschedulable_transient_exit_one(
        self, tmp_path, capsys
    ):
        from repro.aadl.gallery import fault_recovery_text

        # Make the recovery workload heavy enough that the switch
        # overlap misses even though each steady mode holds up on its
        # own -- the verdict only the transition-aware analysis sees.
        source = fault_recovery_text().replace(
            "Compute_Execution_Time => 4 ms .. 4 ms;\n    Compute_Deadline => 16 ms;",
            "Compute_Execution_Time => 8 ms .. 8 ms;\n    Compute_Deadline => 16 ms;",
        )
        path = tmp_path / "heavy.aadl"
        path.write_text(source)
        assert (
            main(
                [
                    "analyze", str(path), "--modal",
                    "--protocol", "asynchronous",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "verdict: unschedulable" in out
        assert "mode recovery: schedulable" in out
        assert (
            "recovery -[monitor.done]-> nominal: unschedulable" in out
        )

    def test_modal_on_modeless_model_is_usage_error(
        self, cc_file, capsys
    ):
        assert main(["analyze", cc_file, "--modal"]) == 2
        assert "declares no modes" in capsys.readouterr().err

    def test_modal_rejects_multiple_files(
        self, plant_file, cc_file, capsys
    ):
        assert main(["analyze", plant_file, cc_file, "--modal"]) == 2
        assert "exactly one model" in capsys.readouterr().err

    def test_all_modes_portfolio_pool_caches(
        self, plant_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        args = [
            "analyze", plant_file, "--all-modes", "--portfolio",
            "--jobs", "2", "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[cached]" in out
        assert "mode nominal" in out

    def test_batch_run_modal(self, plant_file, capsys):
        assert (
            main(
                [
                    "batch", "run", plant_file, "--modal",
                    "--protocol", "asynchronous", "--jobs", "1",
                ]
            )
            == 0
        )
        assert "schedulable" in capsys.readouterr().out
