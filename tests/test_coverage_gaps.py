"""Tests for remaining behavioural corners across modules."""

import pytest

from repro.aadl.gallery import cruise_control, two_periodic_threads
from repro.analysis import Verdict, analyze_model, raise_trace
from repro.translate import translate
from repro.versa import Explorer, random_walk


class TestNonDeadlockedScenarios:
    def test_raise_exemplary_trace(self):
        """Raising works on healthy traces too (deadlocked=False): an
        execution prefix rendered as an AADL scenario."""
        translation = translate(two_periodic_threads(schedulable=True))
        trace = random_walk(translation.system, max_steps=12, seed=5)
        scenario = raise_trace(translation, trace, deadlocked=False)
        assert not scenario.deadlocked
        assert scenario.misses == []
        kinds = {e.kind for e in scenario.events}
        assert "dispatch" in kinds
        assert len(scenario.activity["TwoThreads.fast"]) == scenario.duration

    def test_walk_states_are_reachable(self):
        """Every state touched by a walk appears in the exhaustive
        exploration (the walk is one path of the same relation)."""
        translation = translate(two_periodic_threads(schedulable=True))
        exploration = Explorer(translation.system).run()
        known = set(exploration.states())
        trace = random_walk(translation.system, max_steps=25, seed=9)
        for step in trace:
            assert step.state in known


class TestExplorerBudgets:
    def test_time_budget_truncates(self):
        translation = translate(cruise_control())
        result = Explorer(
            translation.system,
            max_seconds=0.0,
            on_limit="truncate",
        ).run()
        assert not result.completed

    def test_time_budget_raises(self):
        from repro.errors import ExplorationLimitError

        translation = translate(cruise_control())
        with pytest.raises(ExplorationLimitError):
            Explorer(translation.system, max_seconds=0.0).run()


class TestAnalysisResultSurface:
    def test_unknown_format(self):
        result = analyze_model(cruise_control(), max_states=5)
        assert result.verdict is Verdict.UNKNOWN
        assert "unknown" in result.format()
        assert "AnalysisResult" in repr(result)

    def test_full_exploration_mode(self):
        result = analyze_model(
            two_periodic_threads(schedulable=False),
            stop_at_first_deadlock=False,
        )
        assert result.verdict is Verdict.UNSCHEDULABLE
        # Full exploration still produced a scenario for the first
        # (shallowest) deadlock found.
        assert result.scenario is not None


class TestHpfComparisonPath:
    def test_explicit_priorities_in_report(self):
        from repro.aadl.properties import SchedulingProtocol
        from repro.analysis import compare_with_baselines

        rows = compare_with_baselines(
            two_periodic_threads(
                scheduling=SchedulingProtocol.HIGHEST_PRIORITY_FIRST
            )
        )
        methods = {row.method: row.verdict for row in rows}
        assert methods["acsr-exploration"] is True
        assert methods["response-time-analysis"] is True
        # Utilization bounds only apply under RM ordering assumptions.
        assert "utilization-LL" not in methods

    def test_llf_sim_fallback(self):
        from repro.aadl.properties import SchedulingProtocol
        from repro.analysis import compare_with_baselines

        rows = compare_with_baselines(
            two_periodic_threads(
                scheduling=SchedulingProtocol.LEAST_LAXITY_FIRST
            )
        )
        methods = {row.method: row.verdict for row in rows}
        assert methods["cheddar-style-sim"] is True


class TestTraceRendering:
    def test_show_states(self):
        translation = translate(two_periodic_threads(schedulable=True))
        trace = random_walk(translation.system, max_steps=3, seed=1)
        text = trace.format(show_states=True)
        assert "[t=0]" in text
        assert "t=0" in text
