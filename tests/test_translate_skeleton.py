"""Behavioural tests of the thread skeleton (Figures 4-5)."""

import pytest

from repro.acsr import ProcessEnv, parallel, proc, restrict, send, recv, idle, choice, nil
from repro.acsr.events import EventLabel
from repro.acsr.resources import Action
from repro.translate.names import NameTable
from repro.translate.priorities import StaticPriority
from repro.translate.quantum import QuantizedTiming
from repro.translate.skeleton import build_skeleton
from repro.versa import Explorer, find_deadlock


def make_skeleton(timing, **kwargs):
    env = ProcessEnv()
    table = NameTable()
    defaults = dict(cpu_resource="cpu", cpu_priority=StaticPriority(1))
    defaults.update(kwargs)
    ad = build_skeleton(env, table, "sys.t", timing, **defaults)
    return env, table, ad


def driver_env(env, deadline):
    """A driving dispatcher: dispatch immediately, count quanta while
    waiting for done (the counter keeps distinct-duration runs distinct
    in the interned state space)."""
    from repro.acsr import guard
    from repro.acsr.expressions import var

    k = var("k")
    env.define(
        "Drv",
        (),
        send("dispatch$sys_t", 1) >> proc("DrvWait", 0),
    )
    env.define(
        "DrvWait",
        ("k",),
        choice(
            recv("done$sys_t", 0).then(proc("DrvIdle")),
            guard(k < deadline, idle().then(proc("DrvWait", k + 1))),
        ),
    )
    env.define("DrvIdle", (), idle() >> proc("DrvIdle"))


class TestLifecycle:
    def test_await_dispatch_idles(self):
        env, table, ad = make_skeleton(QuantizedTiming(1, 1, 4, None, True))
        system = env.close(proc(ad))
        labels = {str(l) for l, _ in system.steps()}
        assert "idle" in labels
        assert "(dispatch$sys_t?,1)" in labels

    def test_executes_between_cmin_and_cmax(self):
        timing = QuantizedTiming(2, 3, 5, None, True)
        env, table, ad = make_skeleton(timing)
        driver_env(env, 5)
        root = restrict(
            parallel(proc(ad), proc("Drv")), ["dispatch$sys_t", "done$sys_t"]
        )
        system = env.close(root)
        result = Explorer(system, store_transitions=True).run()
        assert result.deadlock_free
        # Completion (tau@done) must be reachable both after 2 and 3 quanta.
        done_durations = set()
        for state in result.states():
            for label, succ in result.transitions_of(state):
                if isinstance(label, EventLabel) and label.via == "done$sys_t":
                    trace = result.trace_to(state)
                    done_durations.add(trace.duration)
        assert done_durations == {2, 3}

    def test_deterministic_execution_time(self):
        timing = QuantizedTiming(2, 2, 5, None, True)
        env, table, ad = make_skeleton(timing)
        driver_env(env, 5)
        root = restrict(
            parallel(proc(ad), proc("Drv")), ["dispatch$sys_t", "done$sys_t"]
        )
        result = Explorer(env.close(root), store_transitions=True).run()
        done_durations = {
            result.trace_to(state).duration
            for state in result.states()
            for label, _ in result.transitions_of(state)
            if isinstance(label, EventLabel) and label.via == "done$sys_t"
        }
        assert done_durations == {2}

    def test_deadline_wall_deadlocks_skeleton(self):
        """Without a cpu grant (a high-priority hog), s reaches the
        deadline and the Compute state realizes the Violation deadlock."""
        from repro.acsr import action

        timing = QuantizedTiming(1, 1, 3, None, True)
        env, table, ad = make_skeleton(timing)
        driver_env(env, 3)
        env.define("Hog9", (), action({"cpu": 9}) >> proc("Hog9"))
        root = restrict(
            parallel(proc(ad), proc("Drv"), proc("Hog9")),
            ["dispatch$sys_t", "done$sys_t"],
        )
        trace = find_deadlock(env.close(root))
        assert trace is not None
        assert trace.duration == 3


class TestBusRefinement:
    def test_final_step_uses_bus(self):
        """Paper S4.2: the last computation step claims cpu AND bus."""
        timing = QuantizedTiming(2, 2, 5, None, True)
        env, table, ad = make_skeleton(
            timing, final_step_resources=["bus$net"]
        )
        driver_env(env, 5)
        root = restrict(
            parallel(proc(ad), proc("Drv")), ["dispatch$sys_t", "done$sys_t"]
        )
        result = Explorer(env.close(root), store_transitions=True).run()
        timed = [
            label
            for state in result.states()
            for label, _ in result.transitions_of(state)
            if isinstance(label, Action) and "cpu" in label
        ]
        with_bus = [l for l in timed if "bus$net" in l]
        without_bus = [l for l in timed if "bus$net" not in l]
        assert with_bus and without_bus

    def test_single_quantum_thread_always_uses_bus(self):
        timing = QuantizedTiming(1, 1, 5, None, True)
        env, table, ad = make_skeleton(
            timing, final_step_resources=["bus$net"]
        )
        driver_env(env, 5)
        root = restrict(
            parallel(proc(ad), proc("Drv")), ["dispatch$sys_t", "done$sys_t"]
        )
        result = Explorer(env.close(root), store_transitions=True).run()
        cpu_steps = [
            label
            for state in result.states()
            for label, _ in result.transitions_of(state)
            if isinstance(label, Action) and "cpu" in label
        ]
        assert cpu_steps
        assert all("bus$net" in l for l in cpu_steps)


class TestEventRefinement:
    def test_completion_events_precede_done(self):
        timing = QuantizedTiming(1, 1, 5, None, True)
        env, table, ad = make_skeleton(
            timing, completion_events=["q$c1", "q$c2"]
        )
        finish = env["F$sys_t"].body
        # The finish chain is q$c1! . q$c2! . done! . AD
        assert finish.label.name == "q$c1"
        second = finish.continuation
        assert second.label.name == "q$c2"
        third = second.continuation
        assert third.label.name == "done$sys_t"

    def test_anytime_events_self_loop_in_compute(self):
        timing = QuantizedTiming(1, 2, 5, None, True)
        env, table, ad = make_skeleton(timing, anytime_events=["q$c"])
        compute = env["C$sys_t"]
        instantiated = compute.unfold((0, 0))
        sends = [
            child
            for child in instantiated.children
            if hasattr(child, "label") and child.label.name == "q$c"
        ]
        assert len(sends) == 1
        # Self-loop: continuation returns to Compute with unchanged params.
        assert sends[0].continuation is proc("C$sys_t", 0, 0)


class TestHeldResources:
    def test_resources_held_after_acquisition(self):
        """Figure 5's R set: held on compute steps and, once execution
        has started (e > 0), across preemption too."""
        timing = QuantizedTiming(2, 2, 5, None, True)
        env, table, ad = make_skeleton(timing, held_resources=["data$d"])
        started = env["C$sys_t"].unfold((1, 1))
        actions = [
            child.action
            for child in started.children
            if hasattr(child, "action")
        ]
        assert actions
        assert all("data$d" in a for a in actions)

    def test_waiting_before_acquisition_holds_nothing(self):
        """At e == 0 the thread has not acquired its shared data: the
        waiting step is the plain idle action (a blocked thread 'remains
        blocked for the remainder of the quantum', S4.1, without
        excluding other sharers)."""
        timing = QuantizedTiming(2, 2, 5, None, True)
        env, table, ad = make_skeleton(timing, held_resources=["data$d"])
        fresh = env["C$sys_t"].unfold((0, 0))
        waiting = [
            child.action
            for child in fresh.children
            if hasattr(child, "action") and "cpu" not in child.action
        ]
        assert waiting
        assert all(a.is_idle for a in waiting)

    def test_two_sharers_can_be_dispatched_together(self):
        """Per-quantum mutual exclusion: concurrent dispatches of two
        sharers must not deadlock -- only serialize."""
        from repro.acsr import parallel, restrict
        from repro.versa import Explorer

        env = ProcessEnv()
        table = NameTable()
        a = build_skeleton(
            env, table, "sys.a", QuantizedTiming(1, 1, 4, None, True),
            cpu_resource="cpu1", cpu_priority=StaticPriority(1),
            held_resources=["data$d"],
        )
        b = build_skeleton(
            env, table, "sys.b", QuantizedTiming(1, 1, 4, None, True),
            cpu_resource="cpu2", cpu_priority=StaticPriority(1),
            held_resources=["data$d"],
        )
        for qual in ("sys_a", "sys_b"):
            env.define(
                f"Drv{qual}", (),
                send(f"dispatch${qual}", 1) >> proc(f"DrvW{qual}"),
            )
            env.define(
                f"DrvW{qual}", (),
                choice(
                    recv(f"done${qual}", 0).then(proc(f"DrvI{qual}")),
                    idle().then(proc(f"DrvW{qual}")),
                ),
            )
            env.define(f"DrvI{qual}", (), idle() >> proc(f"DrvI{qual}"))
        root = restrict(
            parallel(
                proc(a), proc(b),
                proc("Drvsys_a"), proc("Drvsys_b"),
            ),
            ["dispatch$sys_a", "done$sys_a", "dispatch$sys_b", "done$sys_b"],
        )
        result = Explorer(env.close(root)).run()
        assert result.deadlock_free


class TestNameTable:
    def test_records_all_names(self):
        env, table, ad = make_skeleton(QuantizedTiming(1, 1, 4, None, True))
        assert table.lookup("AD$sys_t") == ("await", "sys.t")
        assert table.lookup("C$sys_t") == ("compute", "sys.t")
        assert table.lookup("F$sys_t") == ("finish", "sys.t")
        assert table.lookup("dispatch$sys_t") == ("dispatch", "sys.t")
        assert table.lookup("done$sys_t") == ("done", "sys.t")
