"""Tests of per-mode analysis of multi-modal models."""

import pytest

from repro.errors import AnalysisError
from repro.aadl import parse_model, instantiate
from repro.analysis import Verdict, analyze_all_modes
from repro.analysis.modes import ModalAnalysisResult

MODAL = """
processor CPU
  properties
    Scheduling_Protocol => RMS;
end CPU;

thread Light
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 8 ms;
end Light;

thread Heavy
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 3 ms .. 3 ms;
    Compute_Deadline => 4 ms;
end Heavy;

system S end S;

system implementation S.impl
  subcomponents
    base: thread Light;
    extra_nominal: thread Light in modes (nominal);
    extra_recovery: thread Heavy in modes (recovery);
    cpu: processor CPU;
  modes
    nominal: initial mode;
    recovery: mode;
  properties
    Actual_Processor_Binding => reference(cpu) applies to base;
    Actual_Processor_Binding => reference(cpu) applies to extra_nominal;
    Actual_Processor_Binding => reference(cpu) applies to extra_recovery;
end S.impl;
"""


class TestModeOverrides:
    def test_default_is_initial_mode(self):
        inst = instantiate(parse_model(MODAL), "S.impl")
        assert set(inst.children) == {"base", "extra_nominal", "cpu"}
        assert inst.active_modes == {"S": "nominal"}

    def test_override_activates_other_mode(self):
        inst = instantiate(
            parse_model(MODAL), "S.impl",
            mode_overrides={"S.impl": "recovery"},
        )
        assert set(inst.children) == {"base", "extra_recovery", "cpu"}
        assert inst.active_modes == {"S": "recovery"}

    def test_unknown_mode_rejected(self):
        from repro.errors import AadlInstantiationError

        with pytest.raises(AadlInstantiationError):
            instantiate(
                parse_model(MODAL), "S.impl",
                mode_overrides={"S.impl": "ghost"},
            )

    def test_override_on_modeless_impl_rejected(self):
        from repro.errors import AadlInstantiationError
        from repro.aadl.gallery import cruise_control_text

        with pytest.raises(AadlInstantiationError):
            instantiate(
                parse_model(cruise_control_text()),
                "CruiseControl.impl",
                mode_overrides={"CruiseControl.impl": "nominal"},
            )


class TestAnalyzeAllModes:
    def test_per_mode_verdicts(self):
        model = parse_model(MODAL)
        result = analyze_all_modes(model, "S.impl")
        assert isinstance(result, ModalAnalysisResult)
        # nominal: two Light threads (U = 0.5): fine.
        assert result.per_mode["nominal"].verdict is Verdict.SCHEDULABLE
        # recovery: Light + Heavy (U = 0.25 + 0.75 = 1.0, harmonic): also
        # schedulable under RM.
        assert result.per_mode["recovery"].verdict is Verdict.SCHEDULABLE
        assert result.verdict is Verdict.SCHEDULABLE

    def test_failing_mode_detected(self):
        source = MODAL.replace(
            "Compute_Execution_Time => 3 ms .. 3 ms;",
            "Compute_Execution_Time => 4 ms .. 4 ms;",
        )
        model = parse_model(source)
        result = analyze_all_modes(model, "S.impl")
        assert result.per_mode["nominal"].verdict is Verdict.SCHEDULABLE
        assert result.per_mode["recovery"].verdict is Verdict.UNSCHEDULABLE
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert result.failing_modes == ["recovery"]
        assert "recovery" in result.format()

    def test_modeless_root_rejected(self):
        from repro.aadl.gallery import cruise_control_text

        model = parse_model(cruise_control_text())
        with pytest.raises(AnalysisError):
            analyze_all_modes(model, "CruiseControl.impl")

    def test_unreachable_mode_is_skipped(self):
        """A mode no transition path reaches from the initial mode
        never occurs at runtime; its (unschedulable) workload must not
        turn the verdict."""
        from repro.aadl.gallery import fault_recovery_text

        model = parse_model(fault_recovery_text())
        result = analyze_all_modes(model, "Plant.impl")
        assert "maintenance" not in result.per_mode
        assert result.unreachable_modes == ("maintenance",)
        assert result.verdict is Verdict.SCHEDULABLE
        assert "unreachable from the initial mode" in result.format()

    def test_pooled_modes_cache_on_resubmission(self, tmp_path):
        model = parse_model(MODAL)
        cache = str(tmp_path / "cache")
        first = analyze_all_modes(
            model, "S.impl", workers=1, cache=cache
        )
        assert not any(o.cached for o in first.per_mode.values())
        second = analyze_all_modes(
            model, "S.impl", workers=1, cache=cache
        )
        assert all(o.cached for o in second.per_mode.values())
        assert second.verdict is first.verdict
        assert "[cached]" in second.format()


class TestVerdictDominance:
    """UNSCHEDULABLE > UNKNOWN > SCHEDULABLE across the per-mode map."""

    @staticmethod
    def _result(*verdicts):
        from repro.analysis.modes import ModeOutcome

        return ModalAnalysisResult(
            {
                f"m{i}": ModeOutcome(mode=f"m{i}", verdict=v)
                for i, v in enumerate(verdicts)
            }
        )

    def test_all_schedulable(self):
        result = self._result(Verdict.SCHEDULABLE, Verdict.SCHEDULABLE)
        assert result.verdict is Verdict.SCHEDULABLE

    def test_unknown_dominates_schedulable(self):
        result = self._result(Verdict.SCHEDULABLE, Verdict.UNKNOWN)
        assert result.verdict is Verdict.UNKNOWN

    def test_unschedulable_dominates_unknown(self):
        result = self._result(
            Verdict.UNKNOWN, Verdict.UNSCHEDULABLE, Verdict.SCHEDULABLE
        )
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert result.failing_modes == ["m1"]

    def test_empty_map_rejected(self):
        with pytest.raises(AnalysisError):
            ModalAnalysisResult({})
