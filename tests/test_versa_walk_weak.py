"""Tests for random walks and the weak bisimulation quotient."""

import pytest

from repro.errors import AnalysisError
from repro.acsr import (
    ProcessEnv,
    action,
    choice,
    guard,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    send,
)
from repro.acsr.events import event_label, tau_label, OUT
from repro.acsr.expressions import var
from repro.acsr.resources import Action
from repro.versa import (
    LTS,
    Explorer,
    bisimulation_quotient,
    event_first_policy,
    random_walk,
    uniform_policy,
    walk_statistics,
    weak_bisimulation_quotient,
)


@pytest.fixture
def looping_system():
    env = ProcessEnv()
    env.define(
        "P",
        (),
        action({"cpu": 1}) >> (send("fin", 0) >> proc("P")),
    )
    env.define(
        "Q",
        (),
        choice(recv("fin", 0).then(proc("Q")), idle().then(proc("Q"))),
    )
    return env.close(restrict(parallel(proc("P"), proc("Q")), ["fin"]))


class TestRandomWalk:
    def test_walk_length(self, looping_system):
        trace = random_walk(looping_system, max_steps=10, seed=0)
        assert len(trace) == 10

    def test_reproducible_with_seed(self, looping_system):
        a = random_walk(looping_system, max_steps=15, seed=42)
        b = random_walk(looping_system, max_steps=15, seed=42)
        assert a.labels() == b.labels()

    def test_walk_stops_at_deadlock(self):
        env = ProcessEnv()
        env.define("D", (), action({"cpu": 1}) >> nil())
        trace = random_walk(env.close(proc("D")), max_steps=50, seed=0)
        assert len(trace) == 1

    def test_zero_steps(self, looping_system):
        trace = random_walk(looping_system, max_steps=0)
        assert len(trace) == 0
        assert trace.final_state is looping_system.root

    def test_negative_steps_rejected(self, looping_system):
        with pytest.raises(AnalysisError):
            random_walk(looping_system, max_steps=-1)

    def test_event_first_policy_drains_events(self, looping_system):
        trace = random_walk(
            looping_system,
            max_steps=20,
            seed=3,
            policy=event_first_policy,
        )
        # After the compute step the handshake always fires immediately:
        # the labels strictly alternate action / tau.
        kinds = ["E" if step.is_event else "A" for step in trace]
        assert kinds == ["A", "E"] * 10

    def test_bad_policy_rejected(self, looping_system):
        with pytest.raises(AnalysisError):
            random_walk(
                looping_system,
                max_steps=5,
                policy=lambda steps, rng: 99,
            )

    def test_statistics_on_deadlocking_system(self):
        env = ProcessEnv()
        n = var("n")
        env.define(
            "C", ("n",), guard(n < 3, action({"cpu": 1}) >> proc("C", n + 1))
        )
        stats = walk_statistics(
            env.close(proc("C", 0)), walks=10, max_steps=50, seed=1
        )
        assert stats["deadlock_rate"] == 1.0
        assert stats["max_duration"] == 3

    def test_statistics_on_live_system(self, looping_system):
        stats = walk_statistics(
            looping_system, walks=5, max_steps=30, seed=1
        )
        assert stats["deadlock_rate"] == 0.0
        assert stats["deadlocks"] == 0
        assert stats["mean_duration"] > 0

    def test_trace_records_deadlock_flag(self, looping_system):
        env = ProcessEnv()
        env.define("D", (), action({"cpu": 1}) >> nil())
        dead = random_walk(env.close(proc("D")), max_steps=50, seed=0)
        assert dead.deadlocked is True
        live = random_walk(looping_system, max_steps=10, seed=0)
        assert live.deadlocked is False

    def test_deadlock_at_exactly_max_steps_counted(self):
        # The boundary case the old length-based heuristic missed: the
        # walk budget runs out on the same step that reaches the stuck
        # state, so len(trace) == max_steps yet the walk deadlocked.
        env = ProcessEnv()
        n = var("n")
        env.define(
            "C", ("n",), guard(n < 3, action({"cpu": 1}) >> proc("C", n + 1))
        )
        system = env.close(proc("C", 0))
        trace = random_walk(system, max_steps=3, seed=0)
        assert len(trace) == 3
        assert trace.deadlocked is True
        stats = walk_statistics(system, walks=4, max_steps=3, seed=1)
        assert stats["deadlocks"] == 4
        assert stats["deadlock_rate"] == 1.0

    def test_multi_walk_seed_sequence_determinism(self, looping_system):
        from repro.versa import multi_walk

        first = multi_walk(looping_system, walks=6, max_steps=12, seed=9)
        second = multi_walk(looping_system, walks=6, max_steps=12, seed=9)
        assert [t.labels() for t in first] == [t.labels() for t in second]
        # Spawned child streams must be pairwise independent: sibling
        # walks of a branching system should not all replay one stream.
        import numpy as np

        spawned = multi_walk(
            looping_system,
            walks=3,
            max_steps=12,
            seed=np.random.SeedSequence(9),
        )
        assert [t.labels() for t in spawned] == [
            t.labels() for t in first[:3]
        ]


class TestWeakBisimulation:
    def explored_lts(self, system):
        result = Explorer(system, store_transitions=True).run()
        return LTS.from_exploration(result)

    def test_tau_chain_collapses(self, looping_system):
        lts = self.explored_lts(looping_system)
        weak, _ = weak_bisimulation_quotient(lts)
        strong, _ = bisimulation_quotient(lts)
        assert weak.num_states < strong.num_states

    def test_visible_behaviour_preserved(self, looping_system):
        lts = self.explored_lts(looping_system)
        weak, block_of = weak_bisimulation_quotient(lts)
        visible = {
            label
            for _, label, _ in weak.edges
            if isinstance(label, Action)
        }
        assert Action([("cpu", 1)]) in visible

    def test_pure_tau_cycle_is_one_state(self):
        lts = LTS(
            3,
            0,
            [
                (0, tau_label(0, via="x"), 1),
                (1, tau_label(0, via="y"), 2),
                (2, tau_label(0), 0),
            ],
        )
        weak, _ = weak_bisimulation_quotient(lts)
        assert weak.num_states == 1
        assert weak.edges == []

    def test_distinct_visible_labels_not_merged(self):
        lts = LTS(
            3,
            0,
            [
                (0, event_label("a", OUT, 1), 2),
                (1, event_label("b", OUT, 1), 2),
            ],
        )
        weak, block_of = weak_bisimulation_quotient(lts)
        assert block_of[0] != block_of[1]

    def test_tau_then_visible_equals_visible(self):
        """s -tau-> t -a-> u is weakly equal to s' -a-> u."""
        lts = LTS(
            4,
            0,
            [
                (0, tau_label(0), 1),
                (1, event_label("a", OUT, 1), 3),
                (2, event_label("a", OUT, 1), 3),
            ],
        )
        weak, block_of = weak_bisimulation_quotient(lts)
        assert block_of[0] == block_of[2]

    def test_empty_lts(self):
        weak, block_of = weak_bisimulation_quotient(LTS(0, 0, []))
        assert weak.num_states == 0
        assert block_of == []

    def test_translated_thread_abstracts_handshakes(self):
        """Weak quotient of a single periodic thread: the visible cycle
        (compute + idles over one period) with handshakes erased."""
        from repro.aadl.builder import SystemBuilder
        from repro.aadl.properties import DispatchProtocol, ms
        from repro.translate import translate

        b = SystemBuilder("W")
        cpu = b.processor("cpu")
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(4),
            compute_time=(ms(1), ms(1)),
            deadline=ms(4),
            processor=cpu,
        )
        translation = translate(b.instantiate())
        lts = self.explored_lts(translation.system)
        weak, _ = weak_bisimulation_quotient(lts)
        # One state per quantum of the period: 4.
        assert weak.num_states == 4
        assert all(isinstance(l, Action) for _, l, _ in weak.edges)
