"""Pins for the headline numbers recorded in EXPERIMENTS.md.

These are not behavioural requirements -- exact state counts depend on
the encoding -- but EXPERIMENTS.md quotes them, so a drift here means the
documentation needs regenerating (run ``pytest benchmarks/ -s``) and the
encoding change deserves a second look.
"""

import pytest

from repro.aadl.gallery import (
    cruise_control,
    priority_inversion_trio,
    two_periodic_threads,
)
from repro.analysis import Verdict, analyze_model
from repro.translate import TranslationOptions, translate
from repro.versa import Explorer


class TestFig1Pins:
    def test_nominal_state_count(self):
        result = analyze_model(cruise_control(), stop_at_first_deadlock=False)
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.num_states == 119

    def test_quantum_sweep_counts(self):
        from repro.aadl.properties import ms

        counts = {}
        for quantum in (10, 5, 2, 1):
            result = analyze_model(
                cruise_control(),
                quantum=ms(quantum),
                stop_at_first_deadlock=False,
            )
            counts[quantum] = result.num_states
        assert counts == {10: 119, 5: 111, 2: 141, 1: 191}


class TestAblationPins:
    def test_unprioritized_cruise_control(self):
        translation = translate(cruise_control())
        result = Explorer(
            translation.system, prioritized=False, max_states=100_000
        ).run()
        assert result.num_states == 17_175
        assert result.num_transitions == 44_404


class TestScenarioPins:
    def test_two_thread_miss_depth(self):
        result = analyze_model(two_periodic_threads(schedulable=False))
        assert result.scenario.duration == 8
        assert result.num_states == 16

    def test_inversion_states(self):
        plain = analyze_model(priority_inversion_trio())
        assert plain.num_states == 30
        ceiling = analyze_model(
            priority_inversion_trio(),
            options=TranslationOptions(use_priority_ceiling=True),
        )
        assert ceiling.verdict is Verdict.SCHEDULABLE
