"""Tests of the textual AADL parser and printer round-trip."""

import pytest

from repro.errors import AadlNameError, AadlSyntaxError
from repro.aadl import (
    ComponentCategory,
    DispatchProtocol,
    OverflowHandlingProtocol,
    PortDirection,
    PortKind,
    SchedulingProtocol,
    TimeRange,
    TimeValue,
    format_model,
    parse_model,
)
from repro.aadl.features import AccessFeature, Port
from repro.aadl.properties import ReferenceValue


THREAD_SRC = """
thread Sensor
  features
    raw: out data port;
    trigger: in event port { Queue_Size => 4; Overflow_Handling_Protocol => Error; };
  properties
    Dispatch_Protocol => Sporadic;
    Period => 20 ms;
    Compute_Execution_Time => 2 ms .. 3 ms;
    Compute_Deadline => 10 ms;
end Sensor;
"""


class TestTypeParsing:
    def test_thread_with_ports(self):
        model = parse_model(THREAD_SRC)
        sensor = model.type("Sensor")
        assert sensor.category is ComponentCategory.THREAD
        raw = sensor.feature("raw")
        assert isinstance(raw, Port)
        assert raw.direction is PortDirection.OUT
        assert raw.kind is PortKind.DATA

    def test_port_property_block(self):
        model = parse_model(THREAD_SRC)
        trigger = model.type("Sensor").feature("trigger")
        assert trigger.own_property("queue_size") == 4
        assert (
            trigger.own_property("overflow_handling_protocol")
            is OverflowHandlingProtocol.ERROR
        )

    def test_typed_enum_properties(self):
        model = parse_model(THREAD_SRC)
        sensor = model.type("Sensor")
        assert (
            sensor.own_property("dispatch_protocol")
            is DispatchProtocol.SPORADIC
        )

    def test_time_range_property(self):
        model = parse_model(THREAD_SRC)
        value = model.type("Sensor").own_property("compute_execution_time")
        assert isinstance(value, TimeRange)
        assert value.low == TimeValue(2, "ms")
        assert value.high == TimeValue(3, "ms")

    def test_in_out_port(self):
        model = parse_model(
            "thread T features p: in out event data port; end T;"
        )
        port = model.type("T").feature("p")
        assert port.direction is PortDirection.IN_OUT
        assert port.kind is PortKind.EVENT_DATA

    def test_access_feature(self):
        model = parse_model(
            "thread T features d: requires data access Shared; end T;"
        )
        feature = model.type("T").feature("d")
        assert isinstance(feature, AccessFeature)
        assert feature.classifier == "Shared"

    def test_end_name_mismatch(self):
        with pytest.raises(AadlSyntaxError):
            parse_model("thread T end U;")

    def test_keywords_case_insensitive(self):
        model = parse_model(
            "THREAD T PROPERTIES Dispatch_Protocol => periodic; END T;"
        )
        assert model.has_type("t")


IMPL_SRC = """
processor CPU
  properties
    Scheduling_Protocol => EDF;
end CPU;

thread T
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Compute_Deadline => 10 ms;
end T;

system S
end S;

system implementation S.impl
  subcomponents
    t1: thread T;
    t2: thread T;
    cpu: processor CPU;
  properties
    Actual_Processor_Binding => reference(cpu) applies to t1;
    Actual_Processor_Binding => reference(cpu) applies to t2;
end S.impl;
"""


class TestImplementationParsing:
    def test_subcomponents(self):
        model = parse_model(IMPL_SRC)
        impl = model.implementation("S.impl")
        assert set(impl.subcomponents) == {"t1", "t2", "cpu"}
        assert impl.subcomponent("t1").category is ComponentCategory.THREAD

    def test_binding_properties(self):
        model = parse_model(IMPL_SRC)
        impl = model.implementation("S.impl")
        contained = impl.contained_properties("actual_processor_binding")
        assert len(contained) == 2
        assert isinstance(contained[0].value, ReferenceValue)

    def test_scheduling_protocol_typed(self):
        model = parse_model(IMPL_SRC)
        cpu = model.type("CPU")
        assert (
            cpu.own_property("scheduling_protocol")
            is SchedulingProtocol.EARLIEST_DEADLINE_FIRST
        )

    def test_impl_requires_known_type(self):
        with pytest.raises(AadlNameError):
            parse_model("system implementation Ghost.impl end Ghost.impl;")

    def test_connections(self):
        src = IMPL_SRC.replace(
            "system implementation S.impl",
            "system implementation S.impl",
        )
        model = parse_model(
            """
            thread A features o: out data port; end A;
            thread B features i: in data port; end B;
            system S end S;
            system implementation S.impl
              subcomponents
                a: thread A;
                b: thread B;
              connections
                c1: port a.o -> b.i;
            end S.impl;
            """
        )
        impl = model.implementation("S.impl")
        assert len(impl.connections) == 1
        conn = impl.connections[0]
        assert str(conn.source) == "a.o"
        assert str(conn.destination) == "b.i"

    def test_modes(self):
        model = parse_model(
            """
            thread A features fail: out event port; end A;
            system S end S;
            system implementation S.impl
              subcomponents
                a: thread A;
                b: thread A in modes (nominal);
              modes
                nominal: initial mode;
                recovery: mode;
                m1: nominal -[a.fail]-> recovery;
            end S.impl;
            """
        )
        impl = model.implementation("S.impl")
        assert impl.initial_mode().name == "nominal"
        assert len(impl.mode_transitions) == 1
        assert impl.subcomponent("b").in_modes == ("nominal",)

    def test_connection_property_block(self):
        model = parse_model(
            """
            bus Net end Net;
            thread A features o: out data port; end A;
            thread B features i: in data port; end B;
            system S end S;
            system implementation S.impl
              subcomponents
                a: thread A;
                b: thread B;
                net: bus Net;
              connections
                c1: port a.o -> b.i { Actual_Connection_Binding => reference(net); };
            end S.impl;
            """
        )
        conn = model.implementation("S.impl").connections[0]
        value = conn.own_property("actual_connection_binding")
        assert isinstance(value, ReferenceValue)
        assert value.path == ("net",)


class TestValueParsing:
    def test_plain_int(self):
        model = parse_model("thread T properties Priority => 7; end T;")
        assert model.type("T").own_property("priority") == 7

    def test_string_value(self):
        model = parse_model(
            'thread T properties Source_Text => "t.c"; end T;'
        )
        assert model.type("T").own_property("source_text") == "t.c"

    def test_list_value(self):
        model = parse_model(
            "thread T properties Nums => (1, 2, 3); end T;"
        )
        assert model.type("T").own_property("nums") == (1, 2, 3)

    def test_boolean_identifiers(self):
        model = parse_model(
            "thread T properties Active => true; end T;"
        )
        assert model.type("T").own_property("active") is True

    def test_integer_range(self):
        model = parse_model("thread T properties Span => 1 .. 5; end T;")
        assert model.type("T").own_property("span") == (1, 5)


class TestRoundTrip:
    @pytest.mark.parametrize("source", [THREAD_SRC, IMPL_SRC])
    def test_parse_print_parse(self, source):
        model = parse_model(source)
        printed = format_model(model)
        model2 = parse_model(printed)
        assert format_model(model2) == printed

    def test_gallery_cruise_control_roundtrip(self):
        from repro.aadl.gallery import cruise_control_text

        model = parse_model(cruise_control_text())
        printed = format_model(model)
        model2 = parse_model(printed)
        assert format_model(model2) == printed


class TestModeRoundTrip:
    """The printer must re-emit mode declarations the parser reads
    back identically (transitions are renamed to ``mt{idx}`` on the
    first print, so stability is judged printer-normalized)."""

    def test_fault_recovery_roundtrip(self):
        from repro.aadl.gallery import fault_recovery_text

        model = parse_model(fault_recovery_text())
        printed = format_model(model)
        model2 = parse_model(printed)
        assert format_model(model2) == printed

    def test_roundtrip_preserves_mode_semantics(self):
        from repro.aadl.gallery import fault_recovery_text

        model = parse_model(format_model(parse_model(fault_recovery_text())))
        impl = model.implementation("Plant.impl")
        assert impl.initial_mode().name == "nominal"
        assert len(impl.modes) == 4
        transitions = {
            (t.source, t.trigger, t.target)
            for t in impl.mode_transitions
        }
        assert ("nominal", "monitor.fault", "error") in transitions
        assert ("recovery", "monitor.done", "nominal") in transitions
        assert impl.subcomponent("filter").in_modes == ("nominal",)
        assert impl.subcomponent("control").in_modes == ()

    def test_example_file_matches_gallery(self):
        """examples/fault_recovery.aadl is the gallery model, printer-
        normalized; keep the two in sync."""
        import pathlib

        from repro.aadl.gallery import fault_recovery_text

        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "examples" / "fault_recovery.aadl"
        )
        on_disk = parse_model(path.read_text())
        assert format_model(on_disk) == format_model(
            parse_model(fault_recovery_text())
        )
