"""Tests of the export surfaces: scenario JSON, LTS DOT, thread groups."""

import json

import pytest

from repro.aadl import parse_model, instantiate
from repro.aadl.gallery import two_periodic_threads
from repro.analysis import analyze_model
from repro.versa import LTS, Explorer


class TestScenarioJson:
    def test_round_trips_through_json(self):
        result = analyze_model(two_periodic_threads(schedulable=False))
        payload = json.loads(json.dumps(result.scenario.to_dict()))
        assert payload["deadlocked"] is True
        assert payload["misses"] == ["TwoThreads.slow"]
        assert payload["duration"] == 8
        assert len(payload["activity"]["TwoThreads.fast"]) == 8
        kinds = {e["kind"] for e in payload["events"]}
        assert {"dispatch", "complete", "deadline_miss"} <= kinds


class TestLtsDot:
    def test_dot_shape(self):
        from repro.acsr import ProcessEnv, action, nil, proc

        env = ProcessEnv()
        env.define("P", (), action({"cpu": 1}) >> nil())
        result = Explorer(
            env.close(proc("P")), store_transitions=True
        ).run()
        dot = LTS.from_exploration(result).to_dot()
        assert dot.startswith("digraph lts {")
        assert "doublecircle" in dot          # initial state
        assert "color=red" in dot             # deadlock state
        assert 'label="{(cpu,1)}"' in dot
        assert dot.rstrip().endswith("}")


class TestThreadGroups:
    SRC = """
    processor CPU
      properties
        Scheduling_Protocol => RMS;
    end CPU;
    thread Worker
      properties
        Dispatch_Protocol => Periodic;
        Period => 8 ms;
        Compute_Execution_Time => 1 ms .. 1 ms;
        Compute_Deadline => 8 ms;
    end Worker;
    thread group Pool
    end Pool;
    thread group implementation Pool.impl
      subcomponents
        w1: thread Worker;
        w2: thread Worker;
    end Pool.impl;
    system S end S;
    system implementation S.impl
      subcomponents
        pool: thread group Pool.impl;
        cpu: processor CPU;
      properties
        Actual_Processor_Binding => reference(cpu) applies to pool.w1;
        Actual_Processor_Binding => reference(cpu) applies to pool.w2;
    end S.impl;
    """

    def test_thread_group_is_transparent_container(self):
        inst = instantiate(parse_model(self.SRC), "S.impl")
        threads = {t.qualified_name for t in inst.threads()}
        assert threads == {"S.pool.w1", "S.pool.w2"}
        assert all(
            t.bound_processor is inst.child("cpu") for t in inst.threads()
        )

    def test_thread_group_model_analyzes(self):
        from repro.analysis import Verdict

        inst = instantiate(parse_model(self.SRC), "S.impl")
        result = analyze_model(inst)
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.translation.num_thread_processes == 2


class TestProcessHierarchy:
    """AADL proper places threads inside process components; the
    instantiator and translator must handle the extra layer."""

    SRC = """
    processor CPU
      properties
        Scheduling_Protocol => RMS;
    end CPU;
    thread Worker
      properties
        Dispatch_Protocol => Periodic;
        Period => 8 ms;
        Compute_Execution_Time => 2 ms .. 2 ms;
        Compute_Deadline => 8 ms;
    end Worker;
    process App end App;
    process implementation App.impl
      subcomponents
        w: thread Worker;
    end App.impl;
    system S end S;
    system implementation S.impl
      subcomponents
        app: process App.impl;
        cpu: processor CPU;
      properties
        Actual_Processor_Binding => reference(cpu) applies to app.w;
    end S.impl;
    """

    def test_thread_inside_process_bound_and_analyzed(self):
        from repro.analysis import Verdict

        inst = instantiate(parse_model(self.SRC), "S.impl")
        threads = inst.threads()
        assert [t.qualified_name for t in threads] == ["S.app.w"]
        assert threads[0].bound_processor is inst.child("cpu")
        result = analyze_model(inst)
        assert result.verdict is Verdict.SCHEDULABLE

    def test_process_level_connection_resolves(self):
        src = self.SRC.replace(
            "thread Worker\n",
            "thread Worker\n      features\n        o: out data port;\n"
            "        i: in data port;\n",
        ).replace(
            "process App end App;",
            "process App\n      features\n        o: out data port;\n"
            "        i: in data port;\n    end App;",
        ).replace(
            """subcomponents
        w: thread Worker;
    end App.impl;""",
            """subcomponents
        w: thread Worker;
      connections
        pc1: port w.o -> o;
        pc2: port i -> w.i;
    end App.impl;""",
        ).replace(
            """subcomponents
        app: process App.impl;
        cpu: processor CPU;""",
            """subcomponents
        app: process App.impl;
        app2: process App.impl;
        cpu: processor CPU;
      connections
        sc1: port app.o -> app2.i;""",
        ).replace(
            "Actual_Processor_Binding => reference(cpu) applies to app.w;",
            "Actual_Processor_Binding => reference(cpu) applies to app.w;\n"
            "    Actual_Processor_Binding => reference(cpu) applies to app2.w;",
        )
        inst = instantiate(parse_model(src), "S.impl")
        assert len(inst.connections) == 1
        conn = inst.connections[0]
        assert conn.source.qualified_name == "S.app.w.o"
        assert conn.destination.qualified_name == "S.app2.w.i"
        assert len(conn.syntactic) == 3
