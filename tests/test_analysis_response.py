"""Tests of observed response-time extraction from the state space."""

import pytest

from repro.errors import AnalysisError
from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import cruise_control, two_periodic_threads
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis.response import (
    observed_response_times,
    response_time_report,
)
from repro.sched import extract_task_set
from repro.sched.rta import response_times
from repro.translate import translate


class TestAgainstRta:
    def test_two_thread_exact_match(self):
        inst = two_periodic_threads()
        translation = translate(inst)
        observed = observed_response_times(translation)
        analytic = response_times(
            extract_task_set(inst, inst.processors()[0]), ordering="rate"
        )
        assert observed == analytic

    def test_three_thread_exact_match(self):
        """Textbook set C=(1,2,3), T=(4,8,16): R = (1, 3, 7)."""
        b = SystemBuilder("R")
        cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
        for name, c, t in (("t1", 1, 4), ("t2", 2, 8), ("t3", 3, 16)):
            b.thread(
                name,
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(t),
                compute_time=(ms(c), ms(c)),
                deadline=ms(t),
                processor=cpu,
            )
        inst = b.instantiate()
        translation = translate(inst)
        observed = observed_response_times(translation)
        assert observed == {"R.t1": 1, "R.t2": 3, "R.t3": 7}

    def test_uncertain_execution_upper_bounds_deterministic(self):
        """With cmin < cmax the observed worst case uses cmax paths."""
        b = SystemBuilder("U")
        cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(8),
            compute_time=(ms(1), ms(3)),
            deadline=ms(8),
            processor=cpu,
        )
        observed = observed_response_times(translate(b.instantiate()))
        assert observed["U.t"] == 3


class TestBeyondRta:
    def test_covers_event_dispatched_threads(self):
        from repro.aadl.gallery import aperiodic_worker

        inst = aperiodic_worker()
        observed = observed_response_times(translate(inst))
        # The aperiodic worker has an observed response even though the
        # classical task model cannot express it.
        assert observed["AperiodicChain.worker"] is not None
        assert (
            observed["AperiodicChain.worker"]
            <= translate(inst).threads["AperiodicChain.worker"].timing.deadline
        )

    def test_cruise_control_within_deadlines(self):
        translation = translate(cruise_control())
        observed = observed_response_times(translation)
        for qual, value in observed.items():
            assert value is not None
            assert value <= translation.threads[qual].timing.deadline

    def test_bus_incomparability_is_visible(self):
        """Documented overapproximation: a bus-using final step is
        incomparable with a higher-priority bus-free step, so the
        highest-priority HCI thread's observed worst case exceeds its
        interference-free response (see DESIGN.md fidelity notes)."""
        translation = translate(cruise_control())
        observed = observed_response_times(translation)
        assert observed["CruiseControl.hci.buttonpanel"] > 1


class TestErrors:
    def test_unschedulable_model_rejected(self):
        translation = translate(two_periodic_threads(schedulable=False))
        with pytest.raises(AnalysisError):
            observed_response_times(translation)

    def test_budget_exhaustion_rejected(self):
        translation = translate(cruise_control())
        with pytest.raises(Exception):
            observed_response_times(translation, max_states=5)


class TestReport:
    def test_report_renders(self):
        translation = translate(two_periodic_threads())
        text = response_time_report(translation)
        assert "TwoThreads.fast" in text
        assert "deadline" in text
