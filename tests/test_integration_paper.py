"""Integration tests pinned to the paper's explicit claims.

Each test names the paper section it reproduces; the benchmarks in
``benchmarks/`` regenerate the corresponding artifacts with measurements.
"""

import pytest

from repro.aadl import parse_model, instantiate
from repro.aadl.gallery import cruise_control, cruise_control_text
from repro.aadl.properties import SchedulingProtocol, ms
from repro.analysis import Verdict, analyze_model
from repro.sched import extract_task_set, rta_schedulable, edf_schedulable
from repro.translate import translate
from repro.versa import Explorer
from repro.workloads import task_set_to_system
from repro.sched.taskmodel import PeriodicTask, TaskSet


class TestSection41CruiseControl:
    """S4.1: 'the translation produces six ACSR processes that represent
    threads and six ACSR processes that represent dispatchers for each
    thread.  All connections in the example are data connections, thus no
    queue processes are introduced.'"""

    def test_process_counts(self):
        result = translate(cruise_control())
        assert result.num_thread_processes == 6
        assert result.num_dispatchers == 6
        assert result.num_queue_processes == 0

    def test_full_pipeline_from_text(self):
        model = parse_model(cruise_control_text())
        instance = instantiate(model, "CruiseControl.impl")
        result = analyze_model(instance)
        assert result.verdict is Verdict.SCHEDULABLE

    def test_exploration_is_exhaustive(self):
        result = translate(cruise_control())
        exploration = Explorer(result.system, max_states=1_000_000).run()
        assert exploration.completed
        assert exploration.deadlock_free


class TestSection42BusRefinement:
    """S4.2: 'Two of the threads, DriverModeLogic and RefSpeed have
    outgoing data connections that are mapped to the bus ... the last
    computation step of the Compute state uses both cpu and bus as
    resources.  In all other computation steps ... R = {} and access only
    cpu.'"""

    def test_only_two_threads_touch_the_bus(self):
        result = translate(cruise_control())
        exploration = Explorer(
            result.system, max_states=1_000_000, store_transitions=True
        ).run()
        from repro.acsr.resources import Action

        bus_resource = next(iter(result.names.names_of_kind("bus")))
        # Any timed step using the bus also uses the HCI cpu (both
        # bus-mapped sources live on the HCI processor).
        hci_cpu = "cpu$CruiseControl_hci_processor"
        for state in exploration.states():
            for label, _ in exploration.transitions_of(state):
                if isinstance(label, Action) and bus_resource in label:
                    assert hci_cpu in label


class TestSection5PolicyEncodings:
    """S5: fixed-priority and dynamic-priority scheduling encodings.

    The pinned separation case: C=(2,3), T=(4,6), U=1.0 -- RM misses a
    deadline, EDF and LLF schedule it."""

    @pytest.fixture
    def separation_tasks(self):
        return TaskSet(
            [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
        )

    def test_rm_unschedulable(self, separation_tasks):
        instance = task_set_to_system(
            separation_tasks, scheduling=SchedulingProtocol.RATE_MONOTONIC
        )
        assert analyze_model(instance).verdict is Verdict.UNSCHEDULABLE

    def test_edf_schedulable(self, separation_tasks):
        instance = task_set_to_system(
            separation_tasks,
            scheduling=SchedulingProtocol.EARLIEST_DEADLINE_FIRST,
        )
        assert analyze_model(instance).verdict is Verdict.SCHEDULABLE

    def test_llf_schedulable(self, separation_tasks):
        instance = task_set_to_system(
            separation_tasks,
            scheduling=SchedulingProtocol.LEAST_LAXITY_FIRST,
        )
        assert analyze_model(instance).verdict is Verdict.SCHEDULABLE

    def test_matches_classical_theory(self, separation_tasks):
        assert not rta_schedulable(separation_tasks, ordering="rate")
        assert edf_schedulable(separation_tasks)


class TestSection5DeadlockTheorem:
    """S5: 'the resulting ACSR model is deadlock-free if and only if
    every task meets its deadline.'  Spot-checked here; the property
    tests in test_property_agreement.py randomize it."""

    @pytest.mark.parametrize(
        "wcets,periods,expected",
        [
            ((1, 2), (4, 8), True),     # U = 0.5
            ((2, 4), (4, 8), True),     # U = 1.0 harmonic: RM schedules
            ((3, 3), (4, 8), False),    # U = 1.125
            ((2, 3), (4, 6), False),    # U = 1.0 non-harmonic under RM
        ],
    )
    def test_verdict_equals_rta(self, wcets, periods, expected):
        tasks = TaskSet(
            [
                PeriodicTask(f"t{i}", c, p)
                for i, (c, p) in enumerate(zip(wcets, periods))
            ]
        )
        assert rta_schedulable(tasks, ordering="rate") == expected
        instance = task_set_to_system(tasks)
        result = analyze_model(instance)
        assert result.schedulable == expected


class TestSection41QuantumPrecision:
    """S4.1: 'analysis will overapproximate timing behavior ... precision
    can be improved by making scheduling quanta smaller, which tends to
    increase the size of the state space.'"""

    def test_coarse_quantum_false_negative(self):
        """A schedulable set rejected at a coarse quantum and accepted at
        the exact one."""
        tasks = TaskSet([PeriodicTask("a", 4, 8), PeriodicTask("b", 4, 8)])
        instance = task_set_to_system(tasks)
        exact = analyze_model(instance, quantum=ms(1))
        assert exact.verdict is Verdict.SCHEDULABLE
        coarse = analyze_model(instance, quantum=ms(3))
        # Quantum 3 ms: each wcet rounds up to 2 quanta (6 ms) while the
        # deadline floors to 2 quanta: combined demand 4 > 2 -> spurious
        # violation.
        assert coarse.verdict is Verdict.UNSCHEDULABLE

    def test_finer_quantum_grows_state_space(self):
        instance = cruise_control()
        sizes = {}
        for quantum in (ms(10), ms(5), ms(2), ms(1)):
            result = analyze_model(
                instance, quantum=quantum, max_states=2_000_000,
                stop_at_first_deadlock=False,
            )
            sizes[quantum.value] = result.num_states
        # The paper claims a tendency, not strict monotonicity: the
        # finest quantum costs clearly more than the coarsest.
        assert sizes[1] > sizes[2] > sizes[10]

    def test_never_overapproximates_in_reverse(self):
        """A genuinely unschedulable set stays unschedulable at any
        quantum (rounding only adds demand / removes supply)."""
        tasks = TaskSet([PeriodicTask("a", 3, 4), PeriodicTask("b", 3, 8)])
        instance = task_set_to_system(tasks)
        for quantum in (ms(1), ms(2)):
            result = analyze_model(instance, quantum=quantum)
            assert result.verdict is Verdict.UNSCHEDULABLE


class TestSection5FailingScenario:
    """S5/S7: failing scenarios are raised to AADL terms and presented in
    time-line form."""

    def test_overloaded_cruise_control_names_aadl_elements(self):
        result = analyze_model(cruise_control(overloaded=True))
        assert result.verdict is Verdict.UNSCHEDULABLE
        scenario = result.scenario
        elements = {e.element for e in scenario.events}
        # Every named element is a genuine AADL qualified name.
        instance_names = {
            t.qualified_name for t in cruise_control(overloaded=True).threads()
        }
        assert elements <= instance_names
        assert scenario.misses and all(
            m in instance_names for m in scenario.misses
        )

    def test_timeline_covers_all_threads(self):
        result = analyze_model(cruise_control(overloaded=True))
        assert set(result.scenario.activity) == {
            t.qualified_name
            for t in cruise_control(overloaded=True).threads()
        }
