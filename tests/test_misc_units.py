"""Unit tests for smaller modules: names, errors, definitions, printers."""

import pytest

from repro import errors
from repro.acsr import (
    ProcessEnv,
    action,
    format_env,
    idle,
    nil,
    proc,
)
from repro.acsr.definitions import ProcessDef
from repro.errors import AcsrDefinitionError
from repro.translate.names import NameTable, Names, sanitize


class TestErrorsHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_syntax_errors_carry_location(self):
        exc = errors.AadlSyntaxError("bad token", 3, 7)
        assert exc.line == 3 and exc.column == 7
        assert "line 3" in str(exc)

    def test_exploration_limit_carries_state_count(self):
        exc = errors.ExplorationLimitError("budget", states_explored=42)
        assert exc.states_explored == 42


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize("a.b.c") == "a_b_c"

    def test_connection_arrows(self):
        assert sanitize("x.p->y.q") == "x_p__y_q"

    def test_plus_signs(self):
        assert sanitize("c1+c2") == "c1_c2"


class TestNames:
    def test_all_constructors_distinct(self):
        values = {
            Names.cpu("p"),
            Names.bus("p"),
            Names.data("p"),
            Names.dispatch("p"),
            Names.done("p"),
            Names.enqueue("p"),
            Names.dequeue("p"),
            Names.await_dispatch("p"),
            Names.compute("p"),
            Names.finish("p"),
            Names.dispatcher("p", "P"),
            Names.dispatcher_wait("p"),
            Names.dispatcher_idle("p"),
            Names.queue("p"),
            Names.queue_error("p"),
            Names.observer("p"),
            Names.observer_wait("p"),
            Names.obs_start("p"),
            Names.obs_end("p"),
        }
        assert len(values) == 19


class TestNameTable:
    def test_record_and_lookup(self):
        table = NameTable()
        table.record("cpu$p", "cpu", "sys.p")
        assert table.lookup("cpu$p") == ("cpu", "sys.p")
        assert table.kind_of("cpu$p") == "cpu"
        assert table.element_of("cpu$p") == "sys.p"
        assert "cpu$p" in table
        assert len(table) == 1

    def test_idempotent_record(self):
        table = NameTable()
        table.record("cpu$p", "cpu", "sys.p")
        table.record("cpu$p", "cpu", "sys.p")
        assert len(table) == 1

    def test_conflicting_record_rejected(self):
        table = NameTable()
        table.record("cpu$p", "cpu", "sys.p")
        with pytest.raises(ValueError):
            table.record("cpu$p", "bus", "sys.p")

    def test_names_of_kind(self):
        table = NameTable()
        table.record("cpu$a", "cpu", "sys.a")
        table.record("cpu$b", "cpu", "sys.b")
        table.record("bus$n", "bus", "sys.n")
        assert table.names_of_kind("cpu") == {
            "cpu$a": "sys.a",
            "cpu$b": "sys.b",
        }

    def test_unknown_lookup_is_none(self):
        assert NameTable().lookup("ghost") is None


class TestProcessEnv:
    def test_redefine_rejected_by_default(self, env):
        env.define("P", (), idle() >> proc("P"))
        with pytest.raises(AcsrDefinitionError):
            env.define("P", (), nil())

    def test_redefine_allowed_with_flag(self, env):
        env.define("P", (), idle() >> proc("P"))
        env.define("P", (), nil(), allow_redefine=True)
        assert env["P"].body is nil()

    def test_redefine_invalidates_unfold_cache(self, env):
        env.define("P", (), idle() >> proc("P"))
        env.unfold(proc("P"))
        env.define("P", (), nil(), allow_redefine=True)
        assert env.unfold(proc("P")) is nil()

    def test_validate_catches_unknown_reference(self, env):
        env.define("P", (), idle() >> proc("Ghost"))
        with pytest.raises(AcsrDefinitionError):
            env.validate()

    def test_validate_catches_arity_mismatch(self, env):
        from repro.acsr.expressions import var

        env.define("Q", ("n",), idle() >> proc("Q", var("n")))
        env.define("P", (), idle() >> proc("Q", 1, 2))
        with pytest.raises(AcsrDefinitionError):
            env.validate()

    def test_definition_rejects_unbound_params(self):
        from repro.acsr.expressions import var

        with pytest.raises(AcsrDefinitionError):
            ProcessDef("P", ("n",), proc("P", var("m")))

    def test_definition_rejects_duplicate_params(self):
        with pytest.raises(AcsrDefinitionError):
            ProcessDef("P", ("n", "n"), nil())

    def test_unfold_arity_checked(self, env):
        env.define("P", ("n",), nil())
        with pytest.raises(AcsrDefinitionError):
            env["P"].unfold((1, 2))

    def test_iteration_and_names(self, env):
        env.define("A", (), nil())
        env.define("B", (), nil())
        assert env.names() == ["A", "B"]
        assert len(env) == 2
        assert "A" in env and "C" not in env

    def test_cache_stats(self, env):
        env.define("P", (), idle() >> proc("P"))
        system = env.close(proc("P"))
        system.prioritized_steps()
        stats = system.cache_stats()
        assert stats["step_cache"] >= 1
        assert stats["prio_cache"] >= 1


class TestAadlPrinterValues:
    def test_format_value_errors_on_unknown(self):
        from repro.aadl.printer import format_value

        with pytest.raises(TypeError):
            format_value(3.14)

    def test_format_bool_and_string(self):
        from repro.aadl.printer import format_value

        assert format_value(True) == "true"
        assert format_value(False) == "false"
        assert format_value("x.c") == '"x.c"'

    def test_format_tuple(self):
        from repro.aadl.printer import format_value

        assert format_value((1, 2)) == "(1, 2)"


class TestVersion:
    def test_version_importable(self):
        import repro

        assert repro.__version__
        from repro._version import __version__

        assert repro.__version__ == __version__
