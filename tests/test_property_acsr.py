"""Property-based tests (hypothesis) of the ACSR core invariants."""

from hypothesis import given, settings, strategies as st

from repro.acsr import (
    ProcessEnv,
    format_term,
    parse_term,
    preempts,
    prioritized,
    transitions,
)
from repro.acsr.events import IN, OUT, EventLabel, tau_label
from repro.acsr.resources import Action
from repro.acsr.terms import (
    NIL,
    ActionPrefix,
    EventPrefix,
    choice,
    parallel,
    restrict,
)

# -- strategies -------------------------------------------------------------

resources = st.sampled_from(["cpu", "bus", "mem", "net"])
priorities = st.integers(min_value=0, max_value=4)

actions = st.dictionaries(resources, priorities, max_size=3).map(
    lambda d: Action(tuple(d.items()))
)

event_names = st.sampled_from(["a", "b", "c"])

event_labels = st.one_of(
    st.builds(
        lambda n, d, p: EventLabel(n, d, p),
        event_names,
        st.sampled_from([IN, OUT]),
        priorities,
    ),
    st.builds(tau_label, priorities),
)

labels = st.one_of(actions, event_labels)


@st.composite
def closed_terms(draw, depth=3):
    """Random closed terms over prefixes, choice, parallel, restrict."""
    if depth == 0:
        return NIL
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return NIL
    if kind == 1:
        return ActionPrefix(draw(actions), draw(closed_terms(depth - 1)))
    if kind == 2:
        return EventPrefix(
            draw(event_labels), draw(closed_terms(depth - 1))
        )
    if kind == 3:
        return choice(
            draw(closed_terms(depth - 1)), draw(closed_terms(depth - 1))
        )
    return parallel(
        draw(closed_terms(depth - 1)), draw(closed_terms(depth - 1))
    )


# -- preemption relation is a strict partial order ---------------------------


class TestPreemptionOrder:
    @given(labels)
    def test_irreflexive(self, label):
        assert not preempts(label, label)

    @given(labels, labels)
    def test_asymmetric(self, a, b):
        if preempts(a, b):
            assert not preempts(b, a)

    @given(labels, labels, labels)
    def test_transitive(self, a, b, c):
        if preempts(a, b) and preempts(b, c):
            assert preempts(a, c)

    @given(actions)
    def test_idle_preempted_by_positive_action(self, act):
        has_positive = any(p > 0 for _, p in act.pairs)
        assert preempts(Action(()), act) == has_positive


# -- semantics invariants ---------------------------------------------------


class TestSemanticsInvariants:
    @given(closed_terms())
    def test_prioritized_subset_of_unprioritized(self, term):
        env = ProcessEnv()
        all_steps = transitions(term, env)
        pruned = prioritized(all_steps)
        assert set(pruned) <= set(all_steps)

    @given(closed_terms())
    def test_prioritized_nonempty_iff_unprioritized_nonempty(self, term):
        env = ProcessEnv()
        all_steps = transitions(term, env)
        pruned = prioritized(all_steps)
        assert bool(all_steps) == bool(pruned)

    @given(closed_terms())
    def test_parallel_timed_steps_have_merged_resources(self, term):
        """Every timed step of a parallel term uses pairwise-disjoint
        child resources (Par3): labels never double-claim a resource --
        guaranteed by Action construction, checked end-to-end here."""
        env = ProcessEnv()
        for label, _ in transitions(term, env):
            if isinstance(label, Action):
                names = [r for r, _ in label.pairs]
                assert len(names) == len(set(names))

    @given(closed_terms(), st.sets(event_names, max_size=2))
    def test_restriction_blocks_named_events(self, term, names):
        env = ProcessEnv()
        restricted = restrict(term, names)
        for label, _ in transitions(restricted, env):
            if isinstance(label, EventLabel) and not label.is_tau:
                assert label.name not in names

    @given(closed_terms())
    def test_transitions_deterministic(self, term):
        env = ProcessEnv()
        assert transitions(term, env) == transitions(term, env)

    @given(closed_terms(), closed_terms())
    def test_choice_commutative_semantics(self, a, b):
        env = ProcessEnv()
        left = set(transitions(choice(a, b), env))
        right = set(transitions(choice(b, a), env))
        assert left == right

    @given(closed_terms(), closed_terms())
    @settings(max_examples=60)  # quadratic blow-up: cap even nightly
    def test_parallel_commutative_semantics(self, a, b):
        env = ProcessEnv()
        left = {label for label, _ in transitions(parallel(a, b), env)}
        right = {label for label, _ in transitions(parallel(b, a), env)}
        assert left == right


# -- printer/parser round-trip -----------------------------------------------


class TestRoundTripProperty:
    @given(closed_terms())
    def test_parse_of_print_is_identity(self, term):
        assert parse_term(format_term(term)) is term
