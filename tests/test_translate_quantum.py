"""Tests of time quantization (paper S4.1 discrete-time assumption)."""

import pytest

from repro.errors import QuantizationError
from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import cruise_control, two_periodic_threads
from repro.aadl.properties import TimeValue, ms, us
from repro.translate.quantum import TimingQuantizer


def build_thread(period_ms, exec_lo, exec_hi, deadline_ms):
    b = SystemBuilder("Q")
    cpu = b.processor("cpu")
    b.thread(
        "t",
        dispatch="periodic",
        period=ms(period_ms),
        compute_time=(exec_lo, exec_hi),
        deadline=ms(deadline_ms),
        processor=cpu,
    )
    inst = b.instantiate()
    return inst, inst.threads()[0]


class TestRounding:
    def test_exact_quantization(self):
        _, thread = build_thread(10, ms(2), ms(4), 10)
        timing = TimingQuantizer(ms(2)).thread_timing(thread)
        assert (timing.cmin, timing.cmax) == (1, 2)
        assert timing.deadline == 5
        assert timing.period == 5
        assert timing.exact

    def test_wcet_rounds_up(self):
        _, thread = build_thread(10, us(1500), us(2500), 10)
        timing = TimingQuantizer(ms(1)).thread_timing(thread)
        assert timing.cmax == 3  # 2.5 ms rounds up
        assert not timing.exact

    def test_bcet_rounds_down_clamped(self):
        _, thread = build_thread(10, us(500), us(2500), 10)
        timing = TimingQuantizer(ms(1)).thread_timing(thread)
        assert timing.cmin == 1  # 0.5 ms floors to 0, clamps to 1

    def test_deadline_rounds_down(self):
        b_inst, thread = build_thread(10, ms(1), ms(1), 10)
        timing = TimingQuantizer(ms(3)).thread_timing(thread)
        assert timing.deadline == 3  # 10/3 floors
        assert timing.period == 3

    def test_cmin_never_exceeds_cmax(self):
        _, thread = build_thread(10, us(2600), us(2700), 10)
        timing = TimingQuantizer(ms(1)).thread_timing(thread)
        assert timing.cmin <= timing.cmax

    def test_deadline_below_wcet_rejected(self):
        # quantum 4 ms: deadline 10 -> 2 quanta, wcet 5 ms -> 2 quanta OK;
        # quantum 8: deadline -> 1, wcet -> 1 OK; quantum 3: d=3, c=2 OK.
        _, thread = build_thread(10, ms(5), ms(5), 6)
        with pytest.raises(QuantizationError):
            TimingQuantizer(ms(4)).thread_timing(thread)

    def test_deadline_exceeding_period_rejected(self):
        b = SystemBuilder("Q")
        cpu = b.processor("cpu")
        b.thread(
            "t",
            dispatch="periodic",
            period=ms(8),
            compute_time=(ms(1), ms(1)),
            deadline=ms(8),
            processor=cpu,
        )
        inst = b.instantiate()
        # Quantum 3: period floors to 2, deadline floors to 2 -- fine.
        TimingQuantizer(ms(3)).thread_timing(inst.threads()[0])
        # Force D > P via explicit properties.
        b2 = SystemBuilder("Q2")
        cpu2 = b2.processor("cpu")
        b2.thread(
            "t",
            dispatch="aperiodic",
            compute_time=(ms(1), ms(1)),
            deadline=ms(12),
            period=ms(8),
            processor=cpu2,
        )
        inst2 = b2.instantiate(validate=False)
        with pytest.raises(QuantizationError):
            TimingQuantizer(ms(1)).thread_timing(inst2.threads()[0])

    def test_zero_wcet_quantum_rejected(self):
        with pytest.raises(QuantizationError):
            TimingQuantizer(TimeValue(0, "ms"))


class TestNaturalQuantum:
    def test_gcd_of_durations(self):
        inst = two_periodic_threads()
        quantizer = TimingQuantizer.natural(inst)
        assert quantizer.quantum == ms(1)

    def test_cruise_control_natural_quantum(self):
        quantizer = TimingQuantizer.natural(cruise_control())
        assert quantizer.quantum == ms(10)

    def test_natural_quantization_is_exact(self):
        inst = cruise_control()
        quantizer = TimingQuantizer.natural(inst)
        for thread in inst.threads():
            assert quantizer.thread_timing(thread).exact

    def test_mixed_units(self):
        b = SystemBuilder("Q")
        cpu = b.processor("cpu")
        b.thread(
            "t",
            dispatch="periodic",
            period=ms(2),
            compute_time=(us(500), us(500)),
            deadline=ms(2),
            processor=cpu,
        )
        quantizer = TimingQuantizer.natural(b.instantiate())
        assert quantizer.quantum == us(500)


class TestPrecisionMonotonicity:
    def test_smaller_quantum_weakly_tightens_demand(self):
        """Coarser quanta overapproximate: demand ratio cmax/deadline is
        non-increasing as the quantum shrinks toward exactness."""
        _, thread = build_thread(12, us(2500), us(2500), 12)
        ratios = []
        for q_us in (4000, 2000, 1000, 500):
            timing = TimingQuantizer(us(q_us)).thread_timing(thread)
            ratios.append(timing.cmax / timing.deadline)
        assert ratios == sorted(ratios, reverse=True)
