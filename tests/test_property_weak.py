"""Property-based tests for the weak quotient and walk invariants."""

from hypothesis import given, strategies as st

from repro.acsr.events import EventLabel, OUT, event_label, tau_label
from repro.versa import (
    LTS,
    bisimulation_quotient,
    weak_bisimulation_quotient,
)

labels = st.one_of(
    st.builds(lambda p: tau_label(p), st.integers(0, 2)),
    st.builds(
        lambda n, p: event_label(n, OUT, p),
        st.sampled_from(["a", "b"]),
        st.integers(0, 2),
    ),
)


@st.composite
def random_lts(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    n_edges = draw(st.integers(min_value=0, max_value=10))
    edges = [
        (
            draw(st.integers(0, n - 1)),
            draw(labels),
            draw(st.integers(0, n - 1)),
        )
        for _ in range(n_edges)
    ]
    return LTS(n, 0, edges)


class TestQuotientProperties:
    @given(random_lts())
    def test_weak_no_larger_than_strong(self, lts):
        strong, _ = bisimulation_quotient(lts)
        weak, _ = weak_bisimulation_quotient(lts)
        assert weak.num_states <= strong.num_states

    @given(random_lts())
    def test_block_maps_total_and_consistent(self, lts):
        weak, block_of = weak_bisimulation_quotient(lts)
        assert len(block_of) == lts.num_states
        assert all(0 <= b < weak.num_states for b in block_of)
        assert weak.initial == block_of[lts.initial]

    @given(random_lts())
    def test_visible_labels_preserved(self, lts):
        """Every visible label reachable in the original appears in the
        quotient and vice versa (weak moves only erase tau)."""
        weak, _ = weak_bisimulation_quotient(lts)
        original_visible = {
            label
            for _, label, _ in lts.edges
            if not (isinstance(label, EventLabel) and label.is_tau)
        }
        quotient_visible = {
            label for _, label, _ in weak.edges if label != "tau"
        }
        assert quotient_visible <= original_visible
        # A visible edge out of a reachable state survives quotienting;
        # over the whole graph (all states considered roots here) the
        # label sets coincide.
        assert original_visible <= quotient_visible

    @given(random_lts())
    def test_strong_quotient_idempotent(self, lts):
        once, block_of = bisimulation_quotient(lts)
        twice, _ = bisimulation_quotient(once)
        assert twice.num_states == once.num_states

    @given(random_lts())
    def test_weak_quotient_idempotent_in_size(self, lts):
        once, _ = weak_bisimulation_quotient(lts)
        twice, _ = weak_bisimulation_quotient(once)
        assert twice.num_states == once.num_states
