"""Tests of repro.compose: coupling graph, slicing, combination, and
the compositional driver end to end."""

import pytest

from repro.errors import ComposeError, TranslationError
from repro.aadl import SystemSlice, slice_instance
from repro.aadl.builder import SystemBuilder
from repro.aadl.gallery import (
    coupled_islands,
    cruise_control,
    dual_island,
    priority_inversion_trio,
    shared_bus_pair,
    two_periodic_threads,
)
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis import Verdict, analyze_model
from repro.batch import AnalysisJob, execute_job
from repro.batch.cache import cache_key
from repro.compose import (
    CouplingEdge,
    Island,
    analyze_compositionally,
    build_coupling_graph,
    combine_outcomes,
    island_slice,
    partition_instance,
    plan,
)
from repro.compose.combiner import IslandOutcome
from repro.translate import translate


# ---------------------------------------------------------------------------
# Coupling graph
# ---------------------------------------------------------------------------


class TestCouplingGraph:
    def test_dual_island_has_no_edges(self):
        graph = build_coupling_graph(dual_island())
        assert len(graph.processors) == 2
        assert graph.edges == []
        assert len(graph.islands()) == 2

    def test_pure_data_connection_is_not_an_edge(self):
        """The translation ignores unbussed data connections into
        periodic threads, so cutting them is free."""
        inst = dual_island()
        assert len(inst.connections) == 1  # the cross-processor data wire
        assert build_coupling_graph(inst).edges == []

    def test_cross_processor_event_connection_couples(self):
        graph = build_coupling_graph(coupled_islands())
        assert [edge.kind for edge in graph.edges] == ["event"]
        assert len(graph.islands()) == 1

    def test_shared_bus_couples_senders(self):
        graph = build_coupling_graph(shared_bus_pair())
        kinds = {edge.kind for edge in graph.edges}
        assert kinds == {"bus"}
        assert len(graph.islands()) == 1

    def test_shared_data_across_processors_couples(self):
        b = SystemBuilder("SharedData")
        cpu1 = b.processor("cpu1")
        cpu2 = b.processor("cpu2")
        for name, cpu in (("left", cpu1), ("right", cpu2)):
            thread = b.thread(
                name,
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(4),
                compute_time=(ms(1), ms(1)),
                deadline=ms(4),
                processor=cpu,
            )
            thread.requires_data_access("d", classifier="SharedState")
        graph = build_coupling_graph(b.instantiate())
        assert [edge.kind for edge in graph.edges] == ["data"]
        assert "SharedState" in graph.edges[0].detail

    def test_private_data_does_not_couple(self):
        """Distinct classifiers are distinct resources."""
        b = SystemBuilder("PrivateData")
        cpu1 = b.processor("cpu1")
        cpu2 = b.processor("cpu2")
        for name, cpu, classifier in (
            ("left", cpu1, "StateA"),
            ("right", cpu2, "StateB"),
        ):
            thread = b.thread(
                name,
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(4),
                compute_time=(ms(1), ms(1)),
                deadline=ms(4),
                processor=cpu,
            )
            thread.requires_data_access("d", classifier=classifier)
        graph = build_coupling_graph(b.instantiate())
        assert graph.edges == []
        assert len(graph.islands()) == 2

    def test_edges_deduplicated_and_sorted(self):
        inst = shared_bus_pair()
        graph = build_coupling_graph(inst)
        keys = [edge.key for edge in graph.edges]
        assert keys == sorted(set(keys))

    def test_unbound_thread_propagates_translation_error(self):
        b = SystemBuilder("Unbound")
        b.processor("cpu")
        b.thread(
            "loose",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(4),
            compute_time=(ms(1), ms(1)),
            deadline=ms(4),
        )
        with pytest.raises(TranslationError, match="not bound"):
            build_coupling_graph(b.instantiate(validate=False))


class TestPartition:
    def test_dual_island_decomposes(self):
        partition = partition_instance(dual_island())
        assert partition.decomposable
        assert [i.label for i in partition.islands] == [
            "island-0-cpu1",
            "island-1-cpu2",
        ]

    def test_islands_are_deterministic(self):
        first = partition_instance(dual_island())
        second = partition_instance(dual_island())
        assert [
            [t.qualified_name for t in island.threads]
            for island in first.islands
        ] == [
            [t.qualified_name for t in island.threads]
            for island in second.islands
        ]

    def test_single_processor_falls_back(self):
        partition = partition_instance(two_periodic_threads())
        assert not partition.decomposable
        assert "1 bound processor" in partition.fallback_reason

    def test_coupled_model_falls_back_with_reason(self):
        partition = partition_instance(coupled_islands())
        assert not partition.decomposable
        assert "coupled" in partition.fallback_reason
        assert "event" in partition.fallback_reason

    def test_cruise_control_is_bus_coupled(self):
        partition = partition_instance(cruise_control())
        assert not partition.decomposable
        assert "bus" in partition.fallback_reason

    def test_multi_modal_model_falls_back(self):
        inst = dual_island()
        inst.active_modes["DualIsland.sub"] = "backup"
        partition = partition_instance(inst)
        assert not partition.decomposable
        assert "multi-modal" in partition.fallback_reason

    def test_plan_format_lists_islands_and_edges(self):
        text = partition_instance(dual_island()).format()
        assert "islands: 2" in text
        assert "DualIsland.cpu1" in text
        coupled = partition_instance(coupled_islands()).format()
        assert "fallback: monolithic" in coupled
        assert "[event]" in coupled


# ---------------------------------------------------------------------------
# Slicing
# ---------------------------------------------------------------------------


class TestSlicing:
    def test_slice_filters_threads_and_connections(self):
        inst = dual_island()
        partition = partition_instance(inst)
        first = island_slice(inst, partition.islands[0])
        assert isinstance(first, SystemSlice)
        assert [t.qualified_name for t in first.threads()] == [
            "DualIsland.fast",
            "DualIsland.slow",
        ]
        # The cross-island data connection is cut.
        assert first.connections == []

    def test_slice_preserves_identity_and_properties(self):
        """Kept components are the original objects, so qualified names
        and property lookups are unchanged."""
        inst = dual_island()
        partition = partition_instance(inst)
        sliced = island_slice(inst, partition.islands[1])
        originals = {t.qualified_name: t for t in inst.threads()}
        for thread in sliced.threads():
            assert thread is originals[thread.qualified_name]

    def test_slice_translates_standalone(self):
        inst = dual_island()
        partition = partition_instance(inst)
        for island in partition.islands:
            result = translate(island_slice(inst, island))
            assert result.num_thread_processes == 2

    def test_slice_keeps_shared_data_targets(self):
        """Access connections into kept threads drag their data
        component along."""
        inst = priority_inversion_trio()
        threads = [t for t in inst.threads() if t.name != "medium"]
        keep = threads + [inst.threads()[0].bound_processor]
        sliced = slice_instance(inst, keep, label="no-medium")
        assert len(sliced.access_connections) == len(
            inst.access_connections
        )

    def test_slice_keeps_feeding_devices(self):
        src = """
        device Radar
          features
            ping: out event port;
        end Radar;
        thread Tracker
          features
            ping: in event port;
          properties
            Dispatch_Protocol => Sporadic;
            Period => 4 ms;
            Compute_Execution_Time => 1 ms .. 1 ms;
            Deadline => 4 ms;
        end Tracker;
        processor CPU
        end CPU;
        system S
        end S;
        system implementation S.impl
          subcomponents
            radar: device Radar;
            tracker: thread Tracker;
            cpu: processor CPU;
          connections
            c1: port radar.ping -> tracker.ping;
          properties
            Actual_Processor_Binding => reference(cpu) applies to tracker;
        end S.impl;
        """
        from repro.aadl import parse_model, instantiate

        inst = instantiate(parse_model(src), "S.impl")
        tracker = inst.threads()[0]
        sliced = slice_instance(
            inst, [tracker, tracker.bound_processor], label="t"
        )
        assert len(sliced.connections) == 1
        categories = {c.category.value for c in sliced.descendants()}
        assert "device" in categories


# ---------------------------------------------------------------------------
# Verdict combination
# ---------------------------------------------------------------------------


def _island(index=0):
    return Island(index, [], [])


def _outcome(verdict, *, index=0, states=10, error=None):
    return IslandOutcome(
        island=_island(index),
        verdict=verdict,
        states=states,
        elapsed=0.0,
        error=error,
    )


class TestCombination:
    def test_verdict_combine_precedence(self):
        V = Verdict
        assert V.combine([V.SCHEDULABLE, V.SCHEDULABLE]) is V.SCHEDULABLE
        assert V.combine([V.SCHEDULABLE, V.UNKNOWN]) is V.UNKNOWN
        assert (
            V.combine([V.UNKNOWN, V.UNSCHEDULABLE, V.SCHEDULABLE])
            is V.UNSCHEDULABLE
        )
        assert V.combine([]) is V.SCHEDULABLE

    def test_all_schedulable(self):
        partition = partition_instance(dual_island())
        result = combine_outcomes(
            partition,
            [
                _outcome(Verdict.SCHEDULABLE, index=0),
                _outcome(Verdict.SCHEDULABLE, index=1),
            ],
        )
        assert result.verdict is Verdict.SCHEDULABLE
        assert result.total_states == 20

    def test_any_unschedulable_wins_and_names_island(self):
        partition = partition_instance(dual_island())
        result = combine_outcomes(
            partition,
            [
                _outcome(Verdict.SCHEDULABLE, index=0),
                _outcome(Verdict.UNSCHEDULABLE, index=1),
            ],
        )
        assert result.verdict is Verdict.UNSCHEDULABLE
        assert result.first_unschedulable().island.index == 1

    def test_unknown_demotes(self):
        partition = partition_instance(dual_island())
        result = combine_outcomes(
            partition,
            [
                _outcome(Verdict.SCHEDULABLE, index=0),
                _outcome(Verdict.UNKNOWN, index=1),
            ],
        )
        assert result.verdict is Verdict.UNKNOWN
        assert result.exit_code == 3

    def test_island_error_poisons_combination(self):
        partition = partition_instance(dual_island())
        with pytest.raises(ComposeError, match="island analysis failed"):
            combine_outcomes(
                partition,
                [
                    _outcome(Verdict.SCHEDULABLE, index=0),
                    _outcome(Verdict.UNKNOWN, index=1, error="boom"),
                ],
            )


# ---------------------------------------------------------------------------
# Island batch jobs
# ---------------------------------------------------------------------------


class TestIslandJobs:
    def _job(self, *, threads, processors, label="island-x"):
        from repro.aadl import format_model

        inst = dual_island()
        return AnalysisJob.from_island(
            format_model(inst.declarative),
            root="DualIsland.impl",
            label=label,
            threads=threads,
            processors=processors,
        )

    def test_execute_island_job(self):
        result = execute_job(
            self._job(
                threads=["DualIsland.fast", "DualIsland.slow"],
                processors=["DualIsland.cpu1"],
            )
        )
        assert result.verdict == "schedulable"
        assert result.kind == "island"
        assert result.states > 0

    def test_cache_keys_differ_per_island(self):
        first = self._job(
            threads=["DualIsland.fast", "DualIsland.slow"],
            processors=["DualIsland.cpu1"],
        )
        second = self._job(
            threads=["DualIsland.harvest", "DualIsland.report"],
            processors=["DualIsland.cpu2"],
        )
        assert cache_key(first) != cache_key(second)

    def test_cache_key_ignores_label(self):
        """Membership, not the display label, is the key material."""
        kwargs = dict(
            threads=["DualIsland.fast", "DualIsland.slow"],
            processors=["DualIsland.cpu1"],
        )
        assert cache_key(self._job(**kwargs)) == cache_key(
            self._job(label="other-name", **kwargs)
        )

    def test_unknown_member_is_an_error_result(self):
        result = execute_job(
            self._job(
                threads=["DualIsland.missing"],
                processors=["DualIsland.cpu1"],
            )
        )
        assert result.verdict == "error"
        assert "DualIsland.missing" in result.error

    def test_island_job_round_trips(self):
        job = self._job(
            threads=["DualIsland.fast"], processors=["DualIsland.cpu1"]
        )
        clone = AnalysisJob.from_dict(job.to_dict())
        assert clone.kind == "island"
        assert clone.payload == job.payload


# ---------------------------------------------------------------------------
# The compositional driver
# ---------------------------------------------------------------------------


class TestAnalyzeCompositionally:
    def test_agrees_with_monolithic_and_explores_fewer_states(self):
        monolithic = analyze_model(dual_island())
        composed = analyze_compositionally(dual_island(), workers=1)
        assert composed.compositional
        assert composed.verdict is monolithic.verdict
        # The whole point: sum of islands < product state space.
        assert composed.total_states < monolithic.num_states

    def test_unschedulable_island_surfaces_counterexample(self):
        composed = analyze_compositionally(
            dual_island(schedulable=False), workers=1
        )
        assert composed.verdict is Verdict.UNSCHEDULABLE
        culprit = composed.first_unschedulable()
        assert culprit.island.label == "island-1-cpu2"
        assert "deadline_miss" in culprit.rendered
        # ... and agrees with the monolithic answer.
        assert (
            analyze_model(dual_island(schedulable=False)).verdict
            is Verdict.UNSCHEDULABLE
        )

    def test_coupled_model_falls_back_with_reason(self):
        composed = analyze_compositionally(coupled_islands(), workers=1)
        assert not composed.compositional
        assert composed.mode == "monolithic-fallback"
        assert "coupled" in composed.fallback_reason
        assert composed.verdict is analyze_model(coupled_islands()).verdict

    def test_single_processor_falls_back(self):
        composed = analyze_compositionally(
            two_periodic_threads(), workers=1
        )
        assert not composed.compositional
        assert composed.verdict is Verdict.SCHEDULABLE

    def test_declarative_input_requires_root(self):
        from repro.aadl import parse_model

        model = parse_model(open("examples/dual_island.aadl").read())
        with pytest.raises(ValueError, match="root_impl"):
            analyze_compositionally(model)
        composed = analyze_compositionally(
            model, root_impl="DualIsland.impl", workers=1
        )
        assert composed.compositional

    def test_island_results_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = analyze_compositionally(
            dual_island(), workers=1, cache=cache_dir
        )
        assert all(not o.cached for o in first.outcomes)
        second = analyze_compositionally(
            dual_island(), workers=1, cache=cache_dir
        )
        assert all(o.cached for o in second.outcomes)
        assert second.verdict is first.verdict

    def test_quantum_pinned_to_full_model(self):
        """Islands must use the whole model's quantum even when their
        own GCD would be coarser."""
        b = SystemBuilder("Uneven")
        cpu1 = b.processor("cpu1")
        cpu2 = b.processor("cpu2")
        b.thread(
            "coarse",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(4),
            compute_time=(ms(2), ms(2)),
            deadline=ms(4),
            processor=cpu1,
        )
        b.thread(
            "fine",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(3),
            compute_time=(ms(1), ms(1)),
            deadline=ms(3),
            processor=cpu2,
        )
        composed = analyze_compositionally(b.instantiate(), workers=1)
        assert composed.compositional
        # Full-model GCD is 1 ms; a lone 'coarse' island would have
        # used 2 ms.  4 quanta per period proves the pin took.
        rendered = composed.outcomes[0].rendered
        assert "quantum: 1000000000 ps" in rendered

    def test_format_mentions_islands_and_verdict(self):
        text = analyze_compositionally(dual_island(), workers=1).format()
        assert "2 islands" in text
        assert "island-0-cpu1" in text
        assert "verdict: schedulable" in text

    def test_parallel_workers_match_inline(self):
        inline = analyze_compositionally(dual_island(), workers=1)
        pooled = analyze_compositionally(dual_island(), workers=2)
        assert pooled.verdict is inline.verdict
        assert [o.verdict for o in pooled.outcomes] == [
            o.verdict for o in inline.outcomes
        ]


class TestComposeTracing:
    def test_compose_spans_recorded(self):
        from repro.obs import COMPOSE_STAGES, Tracer, activate

        tracer = Tracer()
        with activate(tracer):
            analyze_compositionally(dual_island(), workers=1)
        names = {span.name for span in tracer.spans}
        for stage in COMPOSE_STAGES:
            assert stage in names, f"missing span {stage}"

    def test_fallback_records_partition_span(self):
        from repro.obs import Tracer, activate

        tracer = Tracer()
        with activate(tracer):
            analyze_compositionally(coupled_islands(), workers=1)
        partition_spans = [
            s for s in tracer.spans if s.name == "compose.partition"
        ]
        assert len(partition_spans) == 1
        assert partition_spans[0].attrs["decomposable"] is False
