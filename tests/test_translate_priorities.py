"""Tests of the scheduling-policy priority encodings (paper S5)."""

import pytest

from repro.errors import TranslationError
from repro.acsr.expressions import var
from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import SchedulingProtocol, ms
from repro.translate.priorities import (
    EdfPriority,
    LlfPriority,
    StaticPriority,
    priority_assignment,
)
from repro.translate.quantum import TimingQuantizer


def build_threads(specs):
    """specs: list of (name, period, wcet, deadline, priority)."""
    b = SystemBuilder("P")
    cpu = b.processor("cpu")
    for name, period, wcet, deadline, prio in specs:
        b.thread(
            name,
            dispatch="periodic",
            period=ms(period),
            compute_time=(ms(wcet), ms(wcet)),
            deadline=ms(deadline),
            processor=cpu,
            priority=prio,
        )
    inst = b.instantiate()
    quantizer = TimingQuantizer(ms(1))
    return [
        (t, quantizer.thread_timing(t))
        for t in sorted(inst.threads(), key=lambda t: t.name)
    ]


class TestRateMonotonic:
    def test_shorter_period_higher_priority(self):
        threads = build_threads(
            [("a", 20, 1, 20, None), ("b", 10, 1, 10, None)]
        )
        assignment = priority_assignment(
            SchedulingProtocol.RATE_MONOTONIC, threads
        )
        assert assignment["P.b"].value > assignment["P.a"].value

    def test_priorities_are_distinct_and_positive(self):
        threads = build_threads(
            [(f"t{i}", 10 * (i + 1), 1, 10 * (i + 1), None) for i in range(5)]
        )
        assignment = priority_assignment(
            SchedulingProtocol.RATE_MONOTONIC, threads
        )
        values = sorted(p.value for p in assignment.values())
        assert values == [1, 2, 3, 4, 5]

    def test_tie_broken_by_name(self):
        threads = build_threads(
            [("z", 10, 1, 10, None), ("a", 10, 1, 10, None)]
        )
        assignment = priority_assignment(
            SchedulingProtocol.RATE_MONOTONIC, threads
        )
        assert assignment["P.a"].value > assignment["P.z"].value


class TestDeadlineMonotonic:
    def test_shorter_deadline_higher_priority(self):
        threads = build_threads(
            [("a", 20, 1, 20, None), ("b", 20, 1, 5, None)]
        )
        assignment = priority_assignment(
            SchedulingProtocol.DEADLINE_MONOTONIC, threads
        )
        assert assignment["P.b"].value > assignment["P.a"].value


class TestExplicit:
    def test_larger_priority_property_wins(self):
        threads = build_threads(
            [("a", 10, 1, 10, 5), ("b", 10, 1, 10, 9)]
        )
        assignment = priority_assignment(
            SchedulingProtocol.HIGHEST_PRIORITY_FIRST, threads
        )
        assert assignment["P.b"].value > assignment["P.a"].value

    def test_shifted_to_at_least_one(self):
        threads = build_threads(
            [("a", 10, 1, 10, 0), ("b", 10, 1, 10, 3)]
        )
        assignment = priority_assignment(
            SchedulingProtocol.HIGHEST_PRIORITY_FIRST, threads
        )
        assert min(p.value for p in assignment.values()) == 1

    def test_missing_priority_rejected(self):
        threads = build_threads([("a", 10, 1, 10, None)])
        with pytest.raises(TranslationError):
            priority_assignment(
                SchedulingProtocol.HIGHEST_PRIORITY_FIRST, threads
            )


class TestEdf:
    def test_expression_grows_with_elapsed_time(self):
        """The paper's pi = dmax - (d - t): priority rises as the
        absolute deadline approaches."""
        pri = EdfPriority(deadline=5, dmax=10)
        e, s = var("e"), var("s")
        expr = pri.expr(e, s)
        assert expr.evaluate({"e": 0, "s": 0}) == 6
        assert expr.evaluate({"e": 0, "s": 3}) == 9

    def test_always_strictly_positive(self):
        pri = EdfPriority(deadline=10, dmax=10)
        expr = pri.expr(var("e"), var("s"))
        assert expr.evaluate({"e": 0, "s": 0}) == 1

    def test_earlier_deadline_dominates_at_same_elapsed(self):
        dmax = 10
        tight = EdfPriority(deadline=3, dmax=dmax)
        loose = EdfPriority(deadline=10, dmax=dmax)
        env = {"e": 0, "s": 2}
        e, s = var("e"), var("s")
        assert tight.expr(e, s).evaluate(env) > loose.expr(e, s).evaluate(env)

    def test_assignment_returns_edf(self):
        threads = build_threads(
            [("a", 10, 1, 10, None), ("b", 20, 1, 20, None)]
        )
        assignment = priority_assignment(
            SchedulingProtocol.EARLIEST_DEADLINE_FIRST, threads
        )
        assert all(isinstance(p, EdfPriority) for p in assignment.values())
        assert assignment["P.a"].dmax == 20


class TestLlf:
    def test_priority_rises_as_laxity_falls(self):
        pri = LlfPriority(deadline=10, cmax=3, dmax=10)
        e, s = var("e"), var("s")
        expr = pri.expr(e, s)
        relaxed = expr.evaluate({"e": 2, "s": 0})   # laxity 10-1=9
        urgent = expr.evaluate({"e": 0, "s": 7})    # laxity 3-3=0
        assert urgent > relaxed

    def test_positive_at_max_laxity(self):
        pri = LlfPriority(deadline=10, cmax=3, dmax=10)
        expr = pri.expr(var("e"), var("s"))
        # Maximum laxity: just dispatched with full budget remaining.
        assert expr.evaluate({"e": 0, "s": 0}) >= 1

    def test_assignment_returns_llf(self):
        threads = build_threads([("a", 10, 2, 10, None)])
        assignment = priority_assignment(
            SchedulingProtocol.LEAST_LAXITY_FIRST, threads
        )
        assert isinstance(assignment["P.a"], LlfPriority)


class TestStatic:
    def test_rejects_zero(self):
        with pytest.raises(TranslationError):
            StaticPriority(0)

    def test_expr_is_constant(self):
        assert StaticPriority(3).expr(var("e"), var("s")) == 3
        assert StaticPriority(3).is_static

    def test_empty_assignment(self):
        assert priority_assignment(
            SchedulingProtocol.RATE_MONOTONIC, []
        ) == {}
