"""Property-based tests of the translation layer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import (
    DispatchProtocol,
    SchedulingProtocol,
    TimeValue,
    ms,
    us,
)
from repro.errors import QuantizationError
from repro.translate import translate
from repro.translate.quantum import TimingQuantizer


def build_single(period_us, exec_lo_us, exec_hi_us, deadline_us):
    b = SystemBuilder("Q")
    cpu = b.processor("cpu")
    b.thread(
        "t",
        dispatch=DispatchProtocol.PERIODIC,
        period=us(period_us),
        compute_time=(us(exec_lo_us), us(exec_hi_us)),
        deadline=us(deadline_us),
        processor=cpu,
    )
    inst = b.instantiate()
    return inst.threads()[0]


durations = st.integers(min_value=100, max_value=20_000)
quanta = st.integers(min_value=100, max_value=5_000)


class TestQuantizerProperties:
    @given(durations, durations, quanta)
    def test_conservative_rounding(self, exec_us, deadline_us, quantum_us):
        exec_us = min(exec_us, deadline_us)
        thread = build_single(
            deadline_us, exec_us, exec_us, deadline_us
        )
        quantizer = TimingQuantizer(us(quantum_us))
        try:
            timing = quantizer.thread_timing(thread)
        except QuantizationError:
            return  # infeasible at this quantum: allowed outcome
        # WCET rounds up, deadline rounds down.
        assert timing.cmax * quantum_us >= exec_us
        assert timing.deadline * quantum_us <= deadline_us
        assert 1 <= timing.cmin <= timing.cmax <= timing.deadline
        if timing.period is not None:
            assert timing.deadline <= timing.period

    @given(durations, quanta)
    def test_exactness_detection(self, exec_us, quantum_us):
        deadline_us = exec_us * 4
        thread = build_single(deadline_us, exec_us, exec_us, deadline_us)
        quantizer = TimingQuantizer(us(quantum_us))
        try:
            timing = quantizer.thread_timing(thread)
        except QuantizationError:
            return
        divisible = (
            exec_us % quantum_us == 0 and deadline_us % quantum_us == 0
        )
        assert timing.exact == divisible
        if divisible:
            assert timing.cmax * quantum_us == exec_us
            assert timing.deadline * quantum_us == deadline_us

    @given(durations)
    def test_natural_quantum_is_exact(self, exec_us):
        deadline_us = exec_us * 3
        b = SystemBuilder("N")
        cpu = b.processor("cpu")
        b.thread(
            "t",
            dispatch=DispatchProtocol.PERIODIC,
            period=us(deadline_us),
            compute_time=(us(exec_us), us(exec_us)),
            deadline=us(deadline_us),
            processor=cpu,
        )
        inst = b.instantiate()
        quantizer = TimingQuantizer.natural(inst)
        timing = quantizer.thread_timing(inst.threads()[0])
        assert timing.exact


small_sets = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=2),
        st.sampled_from([4, 8]),
    ),
    min_size=1,
    max_size=3,
)


class TestTranslationInvariants:
    @given(small_sets)
    @settings(max_examples=30)  # full translation per example
    def test_counts_and_closure(self, specs):
        b = SystemBuilder("P")
        cpu = b.processor("cpu")
        for index, (wcet, period) in enumerate(specs):
            b.thread(
                f"t{index}",
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(period),
                compute_time=(ms(wcet), ms(wcet)),
                deadline=ms(period),
                processor=cpu,
            )
        result = translate(b.instantiate())
        assert result.num_thread_processes == len(specs)
        assert result.num_dispatchers == len(specs)
        assert result.root.is_closed()
        # Every thread's dispatch/done is restricted.
        assert len(result.restricted_events) == 2 * len(specs)

    @given(small_sets)
    @settings(max_examples=15)  # full exploration per example
    def test_exploration_time_diverges_or_deadlocks(self, specs):
        """Every reachable path either continues (time can always
        progress in a schedulable model) or ends in a deadlock; the
        explorer terminates because parameters are bounded."""
        from repro.versa import Explorer

        b = SystemBuilder("P")
        cpu = b.processor("cpu")
        for index, (wcet, period) in enumerate(specs):
            b.thread(
                f"t{index}",
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(period),
                compute_time=(ms(wcet), ms(wcet)),
                deadline=ms(period),
                processor=cpu,
            )
        result = translate(b.instantiate())
        exploration = Explorer(result.system, max_states=200_000).run()
        assert exploration.completed
