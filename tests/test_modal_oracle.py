"""The modal oracle campaign: modal transition pass ⇒ honest
reference simulation pass (plus steady-half equivalence), and the
``shrink-transient-window`` fault self-test that proves the campaign
would catch an unsound transient shortcut."""

import numpy as np
import pytest

from repro.cli import main
from repro.oracle import evaluate_modal_case, run_modal_campaign
from repro.oracle.modal import classify_transition
from repro.oracle.verdicts import AgreementStatus
from repro.workloads import faulty_modal_system


class TestClassification:
    def test_modal_pass_reference_fail_is_the_bug_signal(self):
        assert (
            classify_transition(True, False) is AgreementStatus.DISAGREED
        )

    def test_conservatism_is_agreement(self):
        """The relation is one-sided: the modal side may refuse or fail
        a transition the reference passes without being wrong."""
        assert classify_transition(False, True) is AgreementStatus.AGREED
        assert classify_transition(True, True) is AgreementStatus.AGREED
        assert (
            classify_transition(False, False) is AgreementStatus.AGREED
        )
        assert classify_transition(False, None) is AgreementStatus.AGREED

    def test_capped_reference_is_unknown(self):
        assert classify_transition(True, None) is AgreementStatus.UNKNOWN


class TestGenerator:
    def test_faulty_modal_system_shape(self):
        model = faulty_modal_system(
            n_modes=3, threads_per_mode=2,
            rng=np.random.default_rng(11),
        )
        impl = model.implementation("FaultyModal.impl")
        assert len(impl.modes) == 3
        # The mode cycle: one transition out of each mode.
        assert len(impl.mode_transitions) == 3
        sources = {t.source for t in impl.mode_transitions}
        assert sources == {"nominal", "error", "recovery"}

    def test_orphan_mode_is_off_the_cycle(self):
        from repro.modal import ModeAutomaton

        model = faulty_modal_system(
            n_modes=2, include_orphan=True,
            rng=np.random.default_rng(5),
        )
        impl = model.implementation("FaultyModal.impl")
        automaton = ModeAutomaton.from_implementation(model, impl)
        assert automaton.unreachable_modes() == ("maintenance",)

    def test_seeded_case_reproduces(self):
        a = evaluate_modal_case(7)
        b = evaluate_modal_case(7)
        assert a.status is b.status
        assert (a.modes, a.transitions, a.modal_passes) == (
            b.modes, b.transitions, b.modal_passes,
        )


class TestCampaign:
    def test_small_campaign_agrees(self):
        report = run_modal_campaign(seeds=12)
        assert not report.disagreements, report.format()
        # The draw must exercise the non-vacuous side of the relation:
        # some transition actually passed by the modal checker.
        assert sum(o.modal_passes for o in report.outcomes) > 0

    def test_shrink_window_fault_is_caught(self):
        report = run_modal_campaign(
            seeds=12, fault="shrink-transient-window"
        )
        assert report.disagreements, (
            "the shrink-transient-window fault must produce at least "
            "one modal-pass / reference-miss split"
        )
        assert "DISAGREED" in report.format()

    def test_cli_exit_codes(self):
        assert main(["oracle", "modal", "--seeds", "5"]) == 0
        assert (
            main(
                [
                    "oracle", "modal", "--seeds", "5",
                    "--fault", "shrink-transient-window",
                ]
            )
            == 1
        )
